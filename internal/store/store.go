// Package store is the durable, crash-safe result store behind informd's
// in-memory LRU (internal/serve). It maps the serving layer's canonical
// request fingerprints to opaque result payloads and holds them on disk so
// a restarted (or rescheduled) daemon starts warm instead of re-simulating
// its whole working set.
//
// The design center is "never serve a wrong table". Concretely:
//
//   - every entry is written to a temp file and atomically renamed into
//     place, so a crash mid-write leaves a stray .tmp (cleaned on open),
//     never a half-entry under a valid name;
//   - every entry carries a header with the store format, the simulator
//     code version, its own key and payload length, and a SHA-256 checksum
//     of the payload; Get verifies all of it before returning bytes;
//   - anything that fails verification — torn write, flipped bit, wrong
//     key, stale version — is quarantined (moved aside for post-mortem,
//     never deleted silently) and reported as a miss, so the serving layer
//     recomputes: detect, quarantine, recompute;
//   - the store is opened against a version string (serve.CodeVersion);
//     a version change empties the store on open, because results computed
//     by a different simulator build must never be replayed;
//   - total size is bounded: inserts evict least-recently-used entries
//     (access order is maintained in memory and persisted best-effort via
//     file mtimes, so it survives restarts approximately).
//
// I/O goes through the FS interface so internal/faults can inject ENOSPC,
// torn writes, bit flips and slow I/O underneath it (the chaos lane).
// Verification failures are handled internally as misses; only real I/O
// errors escape to the caller, which is the serving layer's signal to
// degrade to RAM-only operation.
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	magic         = "informd-store"
	formatVersion = 1

	entrySuffix   = ".res"
	tmpSuffix     = ".tmp"
	versionFile   = "VERSION"
	quarantineDir = "quarantine"

	// DefaultMaxBytes bounds the store when Options.MaxBytes is zero.
	DefaultMaxBytes = 256 << 20
)

// FS is the filesystem slice the store needs. faults.FaultyFS implements
// it structurally; OSFS is the real thing.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (os.FileInfo, error)
	Chtimes(name string, atime, mtime time.Time) error
}

// OSFS is the passthrough FS.
type OSFS struct{}

func (OSFS) MkdirAll(path string, perm os.FileMode) error     { return os.MkdirAll(path, perm) }
func (OSFS) ReadDir(name string) ([]os.DirEntry, error)       { return os.ReadDir(name) }
func (OSFS) ReadFile(name string) ([]byte, error)             { return os.ReadFile(name) }
func (OSFS) WriteFile(n string, d []byte, p os.FileMode) error { return os.WriteFile(n, d, p) }
func (OSFS) Rename(oldpath, newpath string) error             { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error                         { return os.Remove(name) }
func (OSFS) Stat(name string) (os.FileInfo, error)            { return os.Stat(name) }
func (OSFS) Chtimes(n string, a, m time.Time) error           { return os.Chtimes(n, a, m) }

// Options parameterise Open.
type Options struct {
	// Dir is the store directory (created if absent). Required.
	Dir string

	// Version names the simulator semantics the stored results are valid
	// for (serve.CodeVersion). Opening a store written under a different
	// version empties it. Required.
	Version string

	// MaxBytes bounds the total payload+header bytes on disk (0 =
	// DefaultMaxBytes). Inserts evict LRU entries to stay under it; an
	// entry larger than the bound is not stored at all.
	MaxBytes int64

	// FS overrides the filesystem (nil = OSFS{}). The chaos lane passes a
	// faults.FaultyFS here.
	FS FS

	// Logf, when non-nil, receives recovery and quarantine notices.
	Logf func(format string, args ...any)
}

// Stats counts what the store did since Open.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Writes      uint64
	Evictions   uint64
	Quarantined uint64 // entries that failed verification and were moved aside
	Purged      uint64 // entries dropped by version invalidation on open
}

type entry struct {
	key  string
	size int64
}

// Store is a fingerprint-keyed durable result store. All methods are safe
// for concurrent use; I/O is serialized under one mutex (entries are small
// and the serving layer's RAM cache absorbs the hot path).
type Store struct {
	mu    sync.Mutex
	opts  Options
	fs    FS
	m     map[string]*list.Element
	ll    *list.List // front = most recently used
	bytes int64
	stats Stats
}

func (s *Store) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Open opens (creating if needed) the store at opts.Dir, recovering its
// index from the entry files present: stray temp files are removed, a
// version mismatch empties the store, and the surviving entries are
// ordered oldest-first by mtime so eviction stays LRU across restarts.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: no directory")
	}
	if opts.Version == "" {
		return nil, fmt.Errorf("store: no version string")
	}
	if strings.ContainsAny(opts.Version, " \n") {
		return nil, fmt.Errorf("store: version %q may not contain spaces or newlines", opts.Version)
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	s := &Store{
		opts: opts,
		fs:   opts.FS,
		m:    map[string]*list.Element{},
		ll:   list.New(),
	}
	if err := s.fs.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover scans the directory, applies version invalidation, and rebuilds
// the LRU index.
func (s *Store) recover() error {
	verPath := filepath.Join(s.opts.Dir, versionFile)
	verBytes, err := s.fs.ReadFile(verPath)
	haveVersion := err == nil
	versionOK := haveVersion && strings.TrimSpace(string(verBytes)) == s.opts.Version

	ents, err := s.fs.ReadDir(s.opts.Dir)
	if err != nil {
		return fmt.Errorf("store: scan %s: %w", s.opts.Dir, err)
	}
	type found struct {
		key   string
		size  int64
		mtime time.Time
	}
	var entries []found
	for _, de := range ents {
		name := de.Name()
		full := filepath.Join(s.opts.Dir, name)
		switch {
		case de.IsDir():
			continue
		case strings.HasSuffix(name, tmpSuffix):
			// A crash between write and rename: the entry never became
			// visible, the temp is garbage.
			_ = s.fs.Remove(full)
		case strings.HasSuffix(name, entrySuffix):
			key := strings.TrimSuffix(name, entrySuffix)
			if !validKey(key) {
				s.quarantineFile(full, name)
				continue
			}
			if !versionOK {
				// Results from another simulator build (or an unversioned
				// directory) must never be replayed.
				_ = s.fs.Remove(full)
				s.stats.Purged++
				continue
			}
			fi, err := de.Info()
			if err != nil {
				continue
			}
			entries = append(entries, found{key: key, size: fi.Size(), mtime: fi.ModTime()})
		}
	}
	if !versionOK {
		if err := s.writeAtomic(verPath, []byte(s.opts.Version+"\n")); err != nil {
			return fmt.Errorf("store: write version: %w", err)
		}
		if s.stats.Purged > 0 {
			s.logf("store: version changed, purged %d stale entries", s.stats.Purged)
		}
		return nil
	}
	// Oldest first, so PushFront leaves the most recent at the LRU front.
	// Equal mtimes are common in practice (coarse filesystem timestamp
	// granularity, entries batch-written within one tick), and sort.Slice
	// is unstable, so ordering — and therefore which entry a recovery-time
	// eviction removes — would otherwise vary run to run. The key tie-break
	// makes recovery order, and the eviction victims, deterministic.
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].key < entries[j].key
	})
	for _, e := range entries {
		s.m[e.key] = s.ll.PushFront(&entry{key: e.key, size: e.size})
		s.bytes += e.size
	}
	// The bound may have shrunk since the entries were written.
	if err := s.evictUntil(s.opts.MaxBytes); err != nil {
		return fmt.Errorf("store: recovery eviction: %w", err)
	}
	if n := len(s.m); n > 0 {
		s.logf("store: recovered %d entries (%d bytes) from %s", n, s.bytes, s.opts.Dir)
	}
	return nil
}

func validKey(key string) bool {
	if key == "" || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

func (s *Store) entryPath(key string) string {
	return filepath.Join(s.opts.Dir, key+entrySuffix)
}

// header builds the verification line preceding the payload.
func (s *Store) header(key string, payload []byte) string {
	sum := sha256.Sum256(payload)
	return fmt.Sprintf("%s %d %s %s %d %s\n",
		magic, formatVersion, s.opts.Version, key, len(payload), hex.EncodeToString(sum[:]))
}

// writeAtomic writes data to path via temp-file + rename. The temp lives
// in the same directory so the rename is atomic on POSIX filesystems.
func (s *Store) writeAtomic(path string, data []byte) error {
	tmp := path + tmpSuffix
	if err := s.fs.WriteFile(tmp, data, 0o644); err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	return nil
}

// Get returns the payload stored under key. A missing or
// failed-verification entry is (nil, false, nil) — the caller recomputes.
// A non-nil error means the filesystem itself failed (the degrade signal).
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		s.stats.Misses++
		return nil, false, nil
	}
	path := s.entryPath(key)
	blob, err := s.fs.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			// Removed behind our back; treat as a miss, fix the index.
			s.dropIndex(el)
			s.stats.Misses++
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: read %s: %w", key, err)
	}
	payload, verr := s.verify(key, blob)
	if verr != nil {
		s.logf("store: quarantining %s: %v", key, verr)
		s.dropIndex(el)
		s.quarantineFile(path, key+entrySuffix)
		s.stats.Misses++
		return nil, false, nil
	}
	s.ll.MoveToFront(el)
	// Persist the access best-effort so LRU order survives restarts.
	now := time.Now()
	_ = s.fs.Chtimes(path, now, now)
	s.stats.Hits++
	return payload, true, nil
}

// verify checks blob's header against key and returns the payload.
func (s *Store) verify(key string, blob []byte) ([]byte, error) {
	nl := strings.IndexByte(string(blob[:min(len(blob), 256)]), '\n')
	if nl < 0 {
		return nil, fmt.Errorf("no header line")
	}
	fields := strings.Fields(string(blob[:nl]))
	if len(fields) != 6 {
		return nil, fmt.Errorf("header has %d fields, want 6", len(fields))
	}
	if fields[0] != magic {
		return nil, fmt.Errorf("bad magic %q", fields[0])
	}
	if fields[1] != strconv.Itoa(formatVersion) {
		return nil, fmt.Errorf("format version %q, want %d", fields[1], formatVersion)
	}
	if fields[2] != s.opts.Version {
		return nil, fmt.Errorf("code version %q, want %q", fields[2], s.opts.Version)
	}
	if fields[3] != key {
		return nil, fmt.Errorf("entry is keyed %q", fields[3])
	}
	wantLen, err := strconv.Atoi(fields[4])
	if err != nil {
		return nil, fmt.Errorf("bad payload length %q", fields[4])
	}
	payload := blob[nl+1:]
	if len(payload) != wantLen {
		return nil, fmt.Errorf("payload %d bytes, header says %d (torn write?)", len(payload), wantLen)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != fields[5] {
		return nil, fmt.Errorf("checksum mismatch")
	}
	return payload, nil
}

// Put stores payload under key, evicting LRU entries to respect the size
// bound. An entry that cannot fit at all is skipped without error. A
// non-nil error means the filesystem failed (the degrade signal); the
// index never lists an entry whose write failed.
func (s *Store) Put(key string, payload []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	hdr := s.header(key, payload)
	size := int64(len(hdr) + len(payload))
	if size > s.opts.MaxBytes {
		s.logf("store: entry %s (%d bytes) above store bound %d, not stored", key, size, s.opts.MaxBytes)
		return nil
	}
	var old int64
	if el, ok := s.m[key]; ok {
		old = el.Value.(*entry).size
	}
	if err := s.evictUntil(s.opts.MaxBytes - size + old); err != nil {
		return err
	}
	blob := make([]byte, 0, size)
	blob = append(blob, hdr...)
	blob = append(blob, payload...)
	if err := s.writeAtomic(s.entryPath(key), blob); err != nil {
		// If the key was indexed, its on-disk state is now unknown (the
		// failed write may have clobbered nothing — temp+rename — but the
		// conservative move is to drop it and let Get re-verify later).
		if el, ok := s.m[key]; ok {
			s.dropIndex(el)
		}
		return fmt.Errorf("store: write %s: %w", key, err)
	}
	if el, ok := s.m[key]; ok {
		s.bytes += size - el.Value.(*entry).size
		el.Value.(*entry).size = size
		s.ll.MoveToFront(el)
	} else {
		s.m[key] = s.ll.PushFront(&entry{key: key, size: size})
		s.bytes += size
	}
	s.stats.Writes++
	return nil
}

// Delete removes key's entry (the serving layer uses it when a verified
// payload fails to decode — a should-not-happen belt-and-braces path).
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		return nil
	}
	s.dropIndex(el)
	if err := s.fs.Remove(s.entryPath(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete %s: %w", key, err)
	}
	return nil
}

// evictUntil removes LRU entries until the store holds at most budget
// bytes. Caller holds mu.
func (s *Store) evictUntil(budget int64) error {
	for s.bytes > budget {
		oldest := s.ll.Back()
		if oldest == nil {
			return nil
		}
		e := oldest.Value.(*entry)
		if err := s.fs.Remove(s.entryPath(e.key)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: evict %s: %w", e.key, err)
		}
		s.dropIndex(oldest)
		s.stats.Evictions++
	}
	return nil
}

// dropIndex removes el from the index and size accounting. Caller holds mu.
func (s *Store) dropIndex(el *list.Element) {
	e := el.Value.(*entry)
	s.ll.Remove(el)
	delete(s.m, e.key)
	s.bytes -= e.size
}

// quarantineFile moves a failed-verification file into the quarantine
// subdirectory (falling back to removal if even that fails) so operators
// can post-mortem corrupted entries. Caller holds mu (or is in Open).
func (s *Store) quarantineFile(path, name string) {
	qdir := filepath.Join(s.opts.Dir, quarantineDir)
	if err := s.fs.MkdirAll(qdir, 0o755); err == nil {
		if err := s.fs.Rename(path, filepath.Join(qdir, name)); err == nil {
			s.stats.Quarantined++
			return
		}
	}
	_ = s.fs.Remove(path)
	s.stats.Quarantined++
}

// Len returns the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Bytes returns the indexed on-disk size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats returns the operation counters accumulated since Open.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Keys returns the indexed keys, most recently used first (tests).
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, s.ll.Len())
	for el := s.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*entry).key)
	}
	return keys
}
