package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"informing/internal/faults"
)

const testVersion = "informing-sim/test"

func openTest(t *testing.T, dir string, mut func(*Options)) *Store {
	t.Helper()
	opts := Options{Dir: dir, Version: testVersion}
	if mut != nil {
		mut(&opts)
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func key(i int) string { return fmt.Sprintf("%032x", i) }

func mustPut(t *testing.T, s *Store, k string, payload []byte) {
	t.Helper()
	if err := s.Put(k, payload); err != nil {
		t.Fatalf("Put(%s): %v", k, err)
	}
}

func mustGet(t *testing.T, s *Store, k string) []byte {
	t.Helper()
	b, ok, err := s.Get(k)
	if err != nil {
		t.Fatalf("Get(%s): %v", k, err)
	}
	if !ok {
		t.Fatalf("Get(%s): miss, want hit", k)
	}
	return b
}

func TestStoreRoundTrip(t *testing.T) {
	s := openTest(t, t.TempDir(), nil)
	payload := []byte(`{"run":{"Cycles":12345}}`)
	mustPut(t, s, key(1), payload)
	if got := mustGet(t, s, key(1)); !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
	if _, ok, err := s.Get(key(2)); ok || err != nil {
		t.Fatalf("absent key: ok=%v err=%v, want miss", ok, err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 write", st)
	}
}

// TestStoreWarmReopen: a second Open over the same directory recovers the
// index and serves the same payloads — the warm-restart property.
func TestStoreWarmReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	for i := 0; i < 5; i++ {
		mustPut(t, s, key(i), []byte(fmt.Sprintf("payload-%d", i)))
	}

	s2 := openTest(t, dir, nil)
	if s2.Len() != 5 {
		t.Fatalf("reopened store has %d entries, want 5", s2.Len())
	}
	for i := 0; i < 5; i++ {
		want := fmt.Sprintf("payload-%d", i)
		if got := string(mustGet(t, s2, key(i))); got != want {
			t.Fatalf("entry %d = %q, want %q", i, got, want)
		}
	}
}

// TestStoreVersionInvalidation: opening with a different version string
// empties the store — results from another simulator build are never
// replayed — while a same-version reopen keeps everything.
func TestStoreVersionInvalidation(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	mustPut(t, s, key(1), []byte("old-build-result"))

	s2 := openTest(t, dir, func(o *Options) { o.Version = "informing-sim/other" })
	if s2.Len() != 0 {
		t.Fatalf("version-invalidated store has %d entries, want 0", s2.Len())
	}
	if _, ok, _ := s2.Get(key(1)); ok {
		t.Fatal("stale-version entry served")
	}
	if st := s2.Stats(); st.Purged != 1 {
		t.Fatalf("purged = %d, want 1", st.Purged)
	}

	// And the new version is now durable: a third open (same new version)
	// does not purge again.
	mustPut(t, s2, key(2), []byte("new-build-result"))
	s3 := openTest(t, dir, func(o *Options) { o.Version = "informing-sim/other" })
	if s3.Len() != 1 {
		t.Fatalf("same-version reopen purged: %d entries, want 1", s3.Len())
	}
}

// TestStoreCorruptionQuarantined: flipped payload bytes, a truncated
// (torn) file, a wrong-key rename and a stale header version are all
// detected at Get, quarantined, and reported as misses — never served.
func TestStoreCorruptionQuarantined(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir, path string)
	}{
		{"bit-flip", func(t *testing.T, dir, path string) {
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			blob[len(blob)-1] ^= 0x40
			if err := os.WriteFile(path, blob, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"torn-write", func(t *testing.T, dir, path string) {
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, blob[:len(blob)-3], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong-key", func(t *testing.T, dir, path string) {
			if err := os.Rename(path, filepath.Join(dir, key(99)+entrySuffix)); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := openTest(t, dir, nil)
			mustPut(t, s, key(1), []byte("precious result"))
			tc.corrupt(t, dir, filepath.Join(dir, key(1)+entrySuffix))

			// Reopen (the index must pick the corrupt file up again) and read.
			s2 := openTest(t, dir, nil)
			probe := key(1)
			if tc.name == "wrong-key" {
				probe = key(99)
			}
			b, ok, err := s2.Get(probe)
			if err != nil {
				t.Fatalf("corruption surfaced as I/O error: %v", err)
			}
			if ok {
				t.Fatalf("corrupted entry served: %q", b)
			}
			if st := s2.Stats(); st.Quarantined != 1 {
				t.Fatalf("quarantined = %d, want 1", st.Quarantined)
			}
			// The bad file moved aside for post-mortem, not silently gone.
			qents, err := os.ReadDir(filepath.Join(dir, quarantineDir))
			if err != nil || len(qents) != 1 {
				t.Fatalf("quarantine dir: %v entries, err %v, want exactly 1", len(qents), err)
			}
			// A second probe is a plain miss: quarantine is one-shot.
			if _, ok, _ := s2.Get(probe); ok {
				t.Fatal("quarantined entry served on second read")
			}
		})
	}
}

// TestStoreSizeBoundEviction: inserts stay under MaxBytes by evicting in
// LRU order; a Get refreshes an entry's position.
func TestStoreSizeBoundEviction(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 100)
	s := openTest(t, t.TempDir(), func(o *Options) { o.MaxBytes = 700 })
	entrySize := int64(len(s.header(key(0), payload)) + len(payload))
	fit := int(700 / entrySize)
	if fit < 2 {
		t.Fatalf("test geometry broken: %d entries fit", fit)
	}
	for i := 0; i < fit; i++ {
		mustPut(t, s, key(i), payload)
	}
	// Touch entry 0 so it is MRU, then overflow by one.
	mustGet(t, s, key(0))
	mustPut(t, s, key(fit), payload)

	if s.Bytes() > 700 {
		t.Fatalf("store holds %d bytes, bound 700", s.Bytes())
	}
	if _, ok, _ := s.Get(key(1)); ok {
		t.Fatal("LRU entry 1 survived eviction")
	}
	if _, ok, _ := s.Get(key(0)); !ok {
		t.Fatal("recently-used entry 0 evicted out of order")
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

// TestStoreOversizedEntrySkipped: an entry larger than the whole bound is
// not stored (and not an error), and evicts nothing.
func TestStoreOversizedEntrySkipped(t *testing.T) {
	s := openTest(t, t.TempDir(), func(o *Options) { o.MaxBytes = 400 })
	mustPut(t, s, key(1), bytes.Repeat([]byte("y"), 50))
	mustPut(t, s, key(2), bytes.Repeat([]byte("z"), 1000))
	if _, ok, _ := s.Get(key(2)); ok {
		t.Fatal("oversized entry stored")
	}
	if _, ok, _ := s.Get(key(1)); !ok {
		t.Fatal("oversized insert evicted an innocent entry")
	}
}

// TestStoreStrayTempCleanedOnOpen: a crash between write and rename
// leaves a .tmp file; Open removes it and never indexes it.
func TestStoreStrayTempCleanedOnOpen(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, key(7)+entrySuffix+tmpSuffix)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tmp, []byte("half an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, dir, nil)
	if s.Len() != 0 {
		t.Fatalf("stray temp indexed: %d entries", s.Len())
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stray temp not cleaned: %v", err)
	}
}

// TestStoreRecoveryKeepsLRUOrder: mtimes persist access order, so the
// reopened store evicts the same victim the original would have.
func TestStoreRecoveryKeepsLRUOrder(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	for i := 0; i < 3; i++ {
		mustPut(t, s, key(i), []byte("p"))
		// Distinct mtimes even on coarse-granularity filesystems.
		past := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, key(i)+entrySuffix), past, past); err != nil {
			t.Fatal(err)
		}
	}
	s2 := openTest(t, dir, nil)
	keys := s2.Keys()
	want := []string{key(2), key(1), key(0)} // newest mtime first
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("recovered order %v, want %v", keys, want)
		}
	}
}

// TestStoreWriteFaultSurfacesError: injected ENOSPC on the entry write
// path escapes Put as an error wrapping faults.ErrInjected — the serving
// layer's degrade signal — and the failed entry is never indexed.
func TestStoreWriteFaultSurfacesError(t *testing.T) {
	ffs := faults.NewFS(faults.FSPlan{Seed: 42, Rules: []faults.FSRule{
		{Kind: faults.FSNoSpace, PathContains: entrySuffix},
	}})
	s := openTest(t, t.TempDir(), func(o *Options) { o.FS = ffs })
	err := s.Put(key(1), []byte("doomed"))
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Put under ENOSPC: %v, want injected error", err)
	}
	if s.Len() != 0 {
		t.Fatal("failed write left an index entry")
	}
	if _, ok, _ := s.Get(key(1)); ok {
		t.Fatal("failed write served")
	}
}

// TestStoreTornWriteNeverServed: a torn write that "succeeds" (prefix
// persisted, success reported) must be caught by verification at read
// time and quarantined — the central never-serve-a-wrong-table property.
func TestStoreTornWriteNeverServed(t *testing.T) {
	dir := t.TempDir()
	ffs := faults.NewFS(faults.FSPlan{Seed: 7, Rules: []faults.FSRule{
		{Kind: faults.FSTorn, PathContains: entrySuffix, MaxFires: 1},
	}})
	s := openTest(t, dir, func(o *Options) { o.FS = ffs })
	if err := s.Put(key(1), []byte("this payload will be torn in half")); err != nil {
		t.Fatalf("torn write should report success: %v", err)
	}
	if _, ok, err := s.Get(key(1)); ok || err != nil {
		t.Fatalf("torn entry: ok=%v err=%v, want verification miss", ok, err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
	// The next write of the same key succeeds and serves cleanly.
	mustPut(t, s, key(1), []byte("recomputed"))
	if got := string(mustGet(t, s, key(1))); got != "recomputed" {
		t.Fatalf("recomputed entry = %q", got)
	}
}

// TestStoreBitFlipNeverServed: a bit flipped by the filesystem between
// write and read fails the checksum and is quarantined.
func TestStoreBitFlipNeverServed(t *testing.T) {
	ffs := faults.NewFS(faults.FSPlan{Seed: 11, Rules: []faults.FSRule{
		{Kind: faults.FSFlip, Ops: faults.FSRead, PathContains: entrySuffix, MaxFires: 1},
	}})
	s := openTest(t, t.TempDir(), func(o *Options) { o.FS = ffs })
	mustPut(t, s, key(1), []byte("checksummed payload"))
	if _, ok, err := s.Get(key(1)); ok || err != nil {
		t.Fatalf("flipped entry: ok=%v err=%v, want verification miss", ok, err)
	}
}

// TestStoreConcurrentAccess shakes Put/Get/Delete from many goroutines
// (run under -race in CI) and verifies every served payload matches its
// key — no interleaving may cross payloads between entries.
func TestStoreConcurrentAccess(t *testing.T) {
	s := openTest(t, t.TempDir(), func(o *Options) { o.MaxBytes = 4096 })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := key(i % 5)
				want := "payload-for-" + k
				switch i % 3 {
				case 0:
					if err := s.Put(k, []byte(want)); err != nil {
						t.Errorf("Put: %v", err)
					}
				case 1:
					if b, ok, err := s.Get(k); err != nil {
						t.Errorf("Get: %v", err)
					} else if ok && string(b) != want {
						t.Errorf("Get(%s) = %q, want %q", k, b, want)
					}
				case 2:
					if err := s.Delete(k); err != nil {
						t.Errorf("Delete: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestStoreRejectsBadOptions(t *testing.T) {
	if _, err := Open(Options{Version: "v"}); err == nil {
		t.Error("Open without dir succeeded")
	}
	if _, err := Open(Options{Dir: t.TempDir()}); err == nil {
		t.Error("Open without version succeeded")
	}
	if _, err := Open(Options{Dir: t.TempDir(), Version: "has space"}); err == nil {
		t.Error("Open with spaced version succeeded")
	}
	s := openTest(t, t.TempDir(), nil)
	if err := s.Put("NOT-HEX", []byte("x")); err == nil || !strings.Contains(err.Error(), "invalid key") {
		t.Errorf("Put with invalid key: %v", err)
	}
}

// TestStoreRecoveryEqualMtimesDeterministic: filesystem timestamps are
// coarse, so a batch of entries routinely shares one mtime. sort.Slice is
// unstable, so without the key tie-break the recovered LRU order — and
// therefore which entries a recovery-time eviction removes — differed
// from run to run. The tie-break pins both: order is mtime-then-key, and
// the eviction victims under a shrunken budget are always the
// lexicographically smallest keys of the equal-mtime batch.
func TestStoreRecoveryEqualMtimesDeterministic(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	const n = 9
	for i := 0; i < n; i++ {
		mustPut(t, s, key(i), []byte("p"))
	}
	perEntry := s.Bytes() / n
	stamp := time.Now().Add(-time.Hour).Truncate(time.Second)
	for i := 0; i < n; i++ {
		if err := os.Chtimes(filepath.Join(dir, key(i)+entrySuffix), stamp, stamp); err != nil {
			t.Fatal(err)
		}
	}

	// Recovered order must be identical on every reopen: ascending-key
	// push order leaves the largest key at the LRU front.
	var first []string
	for round := 0; round < 5; round++ {
		s2 := openTest(t, dir, nil)
		keys := s2.Keys()
		if len(keys) != n {
			t.Fatalf("round %d: recovered %d entries, want %d", round, len(keys), n)
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] < keys[i] {
				t.Fatalf("round %d: recovered order not key-descending at %d: %v", round, i, keys)
			}
		}
		if first == nil {
			first = keys
			continue
		}
		for i := range keys {
			if keys[i] != first[i] {
				t.Fatalf("round %d: recovery order changed: %v vs %v", round, keys, first)
			}
		}
	}

	// A shrunken budget at reopen must always evict the same victims: the
	// smallest keys of the equal-mtime batch sit at the LRU back. Each
	// round seeds an identical fresh directory so rounds are independent.
	const keep = 3
	for round := 0; round < 5; round++ {
		rdir := t.TempDir()
		rs := openTest(t, rdir, nil)
		for i := 0; i < n; i++ {
			mustPut(t, rs, key(i), []byte("p"))
		}
		for i := 0; i < n; i++ {
			if err := os.Chtimes(filepath.Join(rdir, key(i)+entrySuffix), stamp, stamp); err != nil {
				t.Fatal(err)
			}
		}
		s3 := openTest(t, rdir, func(o *Options) { o.MaxBytes = keep * perEntry })
		if s3.Len() != keep {
			t.Fatalf("round %d: kept %d entries, want %d", round, s3.Len(), keep)
		}
		for i := 0; i < n-keep; i++ {
			if _, ok, _ := s3.Get(key(i)); ok {
				t.Fatalf("round %d: expected victim %s survived recovery eviction", round, key(i))
			}
		}
		for i := n - keep; i < n; i++ {
			if _, ok, _ := s3.Get(key(i)); !ok {
				t.Fatalf("round %d: expected survivor %s was evicted", round, key(i))
			}
		}
	}
}
