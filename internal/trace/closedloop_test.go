package trace_test

import (
	"bytes"
	"testing"

	"informing/internal/core"
	"informing/internal/obs"
	"informing/internal/trace"
	"informing/internal/workload"
)

// TestClosedLoopGoldenCells is the tentpole acceptance proof (ISSUE 9,
// DESIGN.md §16): three golden-grid cells are recorded with a full
// (-trace-sample 1) pipeline trace through the real obs JSONL encoder,
// and each trace — replayed through an identically configured hierarchy
// with no ISA program — must reconcile the per-level reference and miss
// counters exactly (delta 0) with the originating run, down to the
// per-event levels.
func TestClosedLoopGoldenCells(t *testing.T) {
	if testing.Short() {
		t.Skip("full-trace golden cells are heavy")
	}
	cells := []struct {
		bench   string
		machine core.Machine
		scheme  core.Scheme
		policy  string
		plan    func() workload.Plan
	}{
		{"compress", core.OutOfOrder, core.Off, "", func() workload.Plan { return workload.NewPlanNone() }},
		{"espresso", core.InOrder, core.TrapBranch, "", func() workload.Plan { return workload.NewPlanSingle(1) }},
		{"tomcatv", core.OutOfOrder, core.CondCode, "", func() workload.Plan { return workload.NewPlanCondCode(1) }},
		// Policy-seam cell: the recording hierarchy and the replaying one
		// both run SRRIP (ReplayConfig.Hier carries the policy), so the
		// closed loop must hold under non-LRU replacement too.
		{"compress", core.InOrder, core.Off, "srrip", func() workload.Plan { return workload.NewPlanNone() }},
	}
	for _, c := range cells {
		c := c
		t.Run(c.bench+"/"+c.scheme.String()+c.policy, func(t *testing.T) {
			bm, ok := workload.ByName(c.bench)
			if !ok {
				t.Fatalf("unknown benchmark %s", c.bench)
			}
			prog, err := workload.Build(bm, c.plan(), 1)
			if err != nil {
				t.Fatal(err)
			}
			var cfg core.Config
			if c.machine == core.InOrder {
				cfg = core.Alpha21164(c.scheme)
			} else {
				cfg = core.R10000(c.scheme)
			}

			// Record: the exact path informsim's -trace-out uses. The
			// policy goes on cfg itself so the replay below inherits it
			// through HierConfig.
			cfg = cfg.WithPolicy(c.policy).WithMaxInsts(100_000_000)
			var buf bytes.Buffer
			sink := obs.NewJSONL(&buf, 1)
			run, err := cfg.WithTrace(sink.Emit).Run(prog)
			if err != nil {
				t.Fatal(err)
			}
			if err := sink.Close(); err != nil {
				t.Fatal(err)
			}

			// Replay through the same Table 1 geometry (and replacement
			// policy), then reconcile.
			res, err := trace.Replay(bytes.NewReader(buf.Bytes()), trace.ReplayConfig{Hier: cfg.HierConfig()})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Reconcile(run); err != nil {
				t.Fatalf("closed loop broken: %v", err)
			}
			// The replayed miss taxonomy must reproduce the recording
			// run's class for class, delta 0 — stated directly here, not
			// just through Reconcile's (gated) per-class checks.
			if res.Total.L1Tax != run.L1Tax || res.Total.L2Tax != run.L2Tax {
				t.Errorf("replayed taxonomy L1{%v} L2{%v} != recorded L1{%v} L2{%v}",
					res.Total.L1Tax, res.Total.L2Tax, run.L1Tax, run.L2Tax)
			}
			if res.Total.Events != run.DynInsts {
				t.Errorf("trace carries %d events, run graduated %d", res.Total.Events, run.DynInsts)
			}
			if len(res.Segments) != 1 {
				t.Errorf("one run produced %d segments", len(res.Segments))
			}
			t.Logf("%s: %d events, %d refs, L1M %d, L2M %d reconciled exactly",
				c.bench, res.Total.Events, res.Total.Refs, res.Total.L1Misses, res.Total.L2Misses)
		})
	}
}
