package trace_test

import (
	"bytes"
	"testing"

	"informing/internal/core"
	"informing/internal/obs"
	"informing/internal/trace"
	"informing/internal/workload"
)

// TestClosedLoopGoldenCells is the tentpole acceptance proof (ISSUE 9,
// DESIGN.md §16): three golden-grid cells are recorded with a full
// (-trace-sample 1) pipeline trace through the real obs JSONL encoder,
// and each trace — replayed through an identically configured hierarchy
// with no ISA program — must reconcile the per-level reference and miss
// counters exactly (delta 0) with the originating run, down to the
// per-event levels.
func TestClosedLoopGoldenCells(t *testing.T) {
	if testing.Short() {
		t.Skip("full-trace golden cells are heavy")
	}
	cells := []struct {
		bench   string
		machine core.Machine
		scheme  core.Scheme
		plan    func() workload.Plan
	}{
		{"compress", core.OutOfOrder, core.Off, func() workload.Plan { return workload.NewPlanNone() }},
		{"espresso", core.InOrder, core.TrapBranch, func() workload.Plan { return workload.NewPlanSingle(1) }},
		{"tomcatv", core.OutOfOrder, core.CondCode, func() workload.Plan { return workload.NewPlanCondCode(1) }},
	}
	for _, c := range cells {
		c := c
		t.Run(c.bench, func(t *testing.T) {
			bm, ok := workload.ByName(c.bench)
			if !ok {
				t.Fatalf("unknown benchmark %s", c.bench)
			}
			prog, err := workload.Build(bm, c.plan(), 1)
			if err != nil {
				t.Fatal(err)
			}
			var cfg core.Config
			if c.machine == core.InOrder {
				cfg = core.Alpha21164(c.scheme)
			} else {
				cfg = core.R10000(c.scheme)
			}

			// Record: the exact path informsim's -trace-out uses.
			var buf bytes.Buffer
			sink := obs.NewJSONL(&buf, 1)
			run, err := cfg.WithMaxInsts(100_000_000).WithTrace(sink.Emit).Run(prog)
			if err != nil {
				t.Fatal(err)
			}
			if err := sink.Close(); err != nil {
				t.Fatal(err)
			}

			// Replay through the same Table 1 geometry, then reconcile.
			res, err := trace.Replay(bytes.NewReader(buf.Bytes()), trace.ReplayConfig{Hier: cfg.HierConfig()})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Reconcile(run); err != nil {
				t.Fatalf("closed loop broken: %v", err)
			}
			if res.Total.Events != run.DynInsts {
				t.Errorf("trace carries %d events, run graduated %d", res.Total.Events, run.DynInsts)
			}
			if len(res.Segments) != 1 {
				t.Errorf("one run produced %d segments", len(res.Segments))
			}
			t.Logf("%s: %d events, %d refs, L1M %d, L2M %d reconciled exactly",
				c.bench, res.Total.Events, res.Total.Refs, res.Total.L1Misses, res.Total.L2Misses)
		})
	}
}
