// Package trace is the trace-driven simulation front end (DESIGN.md §16):
// it reads the JSONL pipeline-trace schema the obs layer emits (and
// cmd/tracecheck validates) and replays the memory references through the
// architectural hierarchy model as a first-class workload — no ISA
// program required. The closed loop is the contract: a trace recorded
// from a run with -trace-out, replayed through an identically configured
// hierarchy, reproduces that run's per-level reference and miss counters
// exactly.
//
// The package has three layers:
//
//   - ParseLine/Validate: a strict, allocation-free line parser for the
//     JSONL schema (v1 and v2), shared with cmd/tracecheck;
//   - Reader: a streaming reader with bounded memory, seq-reset
//     segmentation for concatenated sweep traces, and sampled-trace
//     refusal (seq gaps) unless explicitly allowed;
//   - Replay/ReplayData: drive mem.Hierarchy (per-tid hierarchies with
//     store-invalidation coherence for multiprocessor traces) and
//     reconcile the result against the originating stats.Run.
package trace

// Field-presence bits for Event. ParseLine records which keys appeared on
// the wire; Validate uses them for the required-field and pairing rules.
const (
	FieldSeq = 1 << iota
	FieldPC
	FieldDisasm
	FieldFetch
	FieldIssue
	FieldComplete
	FieldGraduate
	FieldLevel
	FieldAddr
	FieldKind
	FieldTid
	FieldTrap
)

// requiredFields are the schema-v1 keys every line must carry.
const requiredFields = FieldSeq | FieldPC | FieldDisasm | FieldFetch |
	FieldIssue | FieldComplete | FieldGraduate | FieldLevel | FieldTrap

// Event is one parsed trace line. Numeric fields mirror stats.TraceEvent;
// Disasm is a view of the still-escaped JSON string body inside the
// parsed line's buffer — valid only until the buffer is reused (Reader
// invalidates it on the next Next call).
type Event struct {
	Seq      uint64
	PC       uint64
	Disasm   []byte
	Fetch    int64
	Issue    int64
	Complete int64
	Graduate int64
	Level    int
	Addr     uint64
	Store    bool
	Tid      int
	Trap     bool

	// Fields is the bitmask of keys present on the wire.
	Fields uint32
}

// Has reports whether the wire line carried the given field bit.
func (e *Event) Has(f uint32) bool { return e.Fields&f != 0 }

// Mem reports whether the event is a memory reference (level > 0).
func (e *Event) Mem() bool { return e.Level > 0 }

// Replayable reports whether the event carries the schema-v2 addr/kind
// pair a memory model needs. Non-memory events are trivially replayable
// (they are skipped).
func (e *Event) Replayable() bool { return e.Level == 0 || e.Has(FieldAddr) }
