package trace

import (
	"errors"
	"fmt"
)

// ErrParse wraps every syntax-level rejection from ParseLine so callers
// can distinguish malformed JSON from semantic (Validate) violations.
var ErrParse = errors.New("trace: malformed line")

func parseErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrParse, fmt.Sprintf(format, args...))
}

// ParseLine parses one JSONL trace line into ev. It is strict — unknown
// keys, duplicate keys, malformed escapes, non-integer numbers and
// trailing bytes after the closing brace are all errors — and it does not
// allocate: numeric fields are accumulated in place and ev.Disasm is a
// view into line (valid only while line's buffer is).
//
// ParseLine replaced the per-line json.Decoder in cmd/tracecheck (which
// converted every line twice and allocated a decoder per line); a
// differential test pins its accept/reject behavior against
// encoding/json with DisallowUnknownFields.
func ParseLine(line []byte, ev *Event) error {
	*ev = Event{}
	i := skipWS(line, 0)
	if i >= len(line) || line[i] != '{' {
		return parseErr("expected '{'")
	}
	i = skipWS(line, i+1)
	if i < len(line) && line[i] == '}' {
		// Empty object: syntactically fine; Validate rejects it for the
		// missing required fields.
		return expectEnd(line, i+1)
	}
	for {
		key, j, err := scanString(line, i)
		if err != nil {
			return err
		}
		i = skipWS(line, j)
		if i >= len(line) || line[i] != ':' {
			return parseErr("expected ':' after key %q", key)
		}
		i = skipWS(line, i+1)
		if i, err = parseField(line, i, key, ev); err != nil {
			return err
		}
		i = skipWS(line, i)
		if i >= len(line) {
			return parseErr("unterminated object")
		}
		switch line[i] {
		case ',':
			i = skipWS(line, i+1)
		case '}':
			return expectEnd(line, i+1)
		default:
			return parseErr("expected ',' or '}' after value of %q", key)
		}
	}
}

// parseField dispatches one key's value. It returns the index just past
// the value.
func parseField(line []byte, i int, key []byte, ev *Event) (int, error) {
	set := func(f uint32) error {
		if ev.Fields&f != 0 {
			return parseErr("duplicate key %q", key)
		}
		ev.Fields |= f
		return nil
	}
	var err error
	switch string(key) {
	case "seq":
		if err = set(FieldSeq); err == nil {
			ev.Seq, i, err = scanUint(line, i, key)
		}
	case "pc":
		if err = set(FieldPC); err == nil {
			ev.PC, i, err = scanHexString(line, i, key)
		}
	case "disasm":
		if err = set(FieldDisasm); err == nil {
			ev.Disasm, i, err = scanString(line, i)
		}
	case "fetch":
		if err = set(FieldFetch); err == nil {
			ev.Fetch, i, err = scanInt(line, i, key)
		}
	case "issue":
		if err = set(FieldIssue); err == nil {
			ev.Issue, i, err = scanInt(line, i, key)
		}
	case "complete":
		if err = set(FieldComplete); err == nil {
			ev.Complete, i, err = scanInt(line, i, key)
		}
	case "graduate":
		if err = set(FieldGraduate); err == nil {
			ev.Graduate, i, err = scanInt(line, i, key)
		}
	case "level":
		if err = set(FieldLevel); err == nil {
			var v int64
			v, i, err = scanInt(line, i, key)
			ev.Level = int(v)
		}
	case "addr":
		if err = set(FieldAddr); err == nil {
			ev.Addr, i, err = scanHexString(line, i, key)
		}
	case "kind":
		if err = set(FieldKind); err == nil {
			var body []byte
			body, i, err = scanString(line, i)
			if err == nil {
				switch string(body) {
				case "load":
					ev.Store = false
				case "store":
					ev.Store = true
				default:
					err = parseErr("kind %q, want \"load\" or \"store\"", body)
				}
			}
		}
	case "tid":
		if err = set(FieldTid); err == nil {
			var v uint64
			v, i, err = scanUint(line, i, key)
			if err == nil && v > 1<<20 {
				err = parseErr("tid %d out of range", v)
			}
			ev.Tid = int(v)
		}
	case "trap":
		if err = set(FieldTrap); err == nil {
			ev.Trap, i, err = scanBool(line, i, key)
		}
	default:
		err = parseErr("unknown key %q", key)
	}
	return i, err
}

func skipWS(b []byte, i int) int {
	for i < len(b) {
		switch b[i] {
		case ' ', '\t', '\r', '\n':
			i++
		default:
			return i
		}
	}
	return i
}

func expectEnd(b []byte, i int) error {
	if i = skipWS(b, i); i != len(b) {
		return parseErr("trailing data after object")
	}
	return nil
}

// scanString scans a JSON string at b[i] and returns the still-escaped
// body (the bytes between the quotes). Escape sequences are checked for
// shape; invalid UTF-8 passes through, matching encoding/json's lenient
// replacement behavior.
func scanString(b []byte, i int) (body []byte, next int, err error) {
	if i >= len(b) || b[i] != '"' {
		return nil, i, parseErr("expected string")
	}
	start := i + 1
	for j := start; j < len(b); {
		c := b[j]
		switch {
		case c == '"':
			return b[start:j], j + 1, nil
		case c == '\\':
			if j+1 >= len(b) {
				return nil, j, parseErr("unterminated escape")
			}
			switch b[j+1] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				j += 2
			case 'u':
				if j+6 > len(b) || !isHex4(b[j+2:j+6]) {
					return nil, j, parseErr("bad \\u escape")
				}
				j += 6
			default:
				return nil, j, parseErr("bad escape '\\%c'", b[j+1])
			}
		case c < 0x20:
			return nil, j, parseErr("raw control character in string")
		default:
			j++
		}
	}
	return nil, i, parseErr("unterminated string")
}

func isHex4(b []byte) bool {
	for _, c := range b {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			return false
		}
	}
	return true
}

// scanUint scans a non-negative JSON integer (no sign, fraction,
// exponent or leading zeros).
func scanUint(b []byte, i int, key []byte) (uint64, int, error) {
	start := i
	var v uint64
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		d := uint64(b[i] - '0')
		if v > (1<<64-1-d)/10 {
			return 0, i, parseErr("%q overflows uint64", key)
		}
		v = v*10 + d
		i++
	}
	switch {
	case i == start:
		return 0, i, parseErr("%q: expected unsigned integer", key)
	case b[start] == '0' && i-start > 1:
		return 0, i, parseErr("%q: leading zero", key)
	}
	return v, i, nil
}

// scanInt scans a JSON integer with optional leading minus.
func scanInt(b []byte, i int, key []byte) (int64, int, error) {
	neg := false
	if i < len(b) && b[i] == '-' {
		neg = true
		i++
	}
	v, i, err := scanUint(b, i, key)
	if err != nil {
		return 0, i, err
	}
	if neg {
		if v > 1<<63 {
			return 0, i, parseErr("%q overflows int64", key)
		}
		return -int64(v), i, nil
	}
	if v > 1<<63-1 {
		return 0, i, parseErr("%q overflows int64", key)
	}
	return int64(v), i, nil
}

// scanHexString scans a JSON string of the form "0x<hex>" (the schema's
// pc/addr encoding) into a uint64.
func scanHexString(b []byte, i int, key []byte) (uint64, int, error) {
	body, next, err := scanString(b, i)
	if err != nil {
		return 0, next, err
	}
	if len(body) < 3 || body[0] != '0' || body[1] != 'x' {
		return 0, next, parseErr("%q value %q not hex (want 0x prefix)", key, body)
	}
	var v uint64
	for _, c := range body[2:] {
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, next, parseErr("%q value %q not hex", key, body)
		}
		if v > 1<<60-1 {
			return 0, next, parseErr("%q value %q overflows uint64", key, body)
		}
		v = v<<4 | d
	}
	return v, next, nil
}

func scanBool(b []byte, i int, key []byte) (bool, int, error) {
	if len(b)-i >= 4 && string(b[i:i+4]) == "true" {
		return true, i + 4, nil
	}
	if len(b)-i >= 5 && string(b[i:i+5]) == "false" {
		return false, i + 5, nil
	}
	return false, i, parseErr("%q: expected true or false", key)
}

// Validate applies the schema's semantic rules to a parsed event. The
// rules for v1 fields match what cmd/tracecheck has always enforced,
// plus the graduation-ordering check the old validator missed:
//
//   - all v1 fields present; level in 0..3; non-empty disasm;
//   - fetch ≤ issue ≤ complete ≤ graduate. Both timing cores emit a real
//     graduation cycle strictly after complete (in-order retires the
//     cycle after writeback; out-of-order graduates from the ROB after
//     completion), and neither ever emits a zero "absent" sentinel — so
//     graduate < complete is always corruption, never a sentinel;
//   - trap requires level ≥ 2 (informing traps fire only on misses);
//   - v2 pairing: addr and kind appear together or not at all, and only
//     on memory events (level ≥ 1). Events without them stay valid (v1
//     compatibility) but are not replayable.
func (e *Event) Validate() error {
	if miss := requiredFields &^ e.Fields; miss != 0 {
		return fmt.Errorf("trace: missing required field %s", fieldName(miss))
	}
	if len(e.Disasm) == 0 {
		return errors.New("trace: empty disasm")
	}
	if e.Level < 0 || e.Level > 3 {
		return fmt.Errorf("trace: level %d out of range [0,3]", e.Level)
	}
	if e.Issue < e.Fetch {
		return fmt.Errorf("trace: issue %d before fetch %d", e.Issue, e.Fetch)
	}
	if e.Complete < e.Issue {
		return fmt.Errorf("trace: complete %d before issue %d", e.Complete, e.Issue)
	}
	if e.Graduate < e.Complete {
		return fmt.Errorf("trace: graduate %d before complete %d", e.Graduate, e.Complete)
	}
	if e.Trap && e.Level < 2 {
		return fmt.Errorf("trace: trap on level %d (traps fire on misses only)", e.Level)
	}
	if e.Has(FieldAddr) != e.Has(FieldKind) {
		return errors.New("trace: addr and kind must appear together")
	}
	if e.Has(FieldAddr) && e.Level == 0 {
		return errors.New("trace: addr/kind on a non-memory event (level 0)")
	}
	return nil
}

// fieldName names the lowest set bit of a field mask, for error text.
func fieldName(mask uint32) string {
	names := []struct {
		f    uint32
		name string
	}{
		{FieldSeq, "seq"}, {FieldPC, "pc"}, {FieldDisasm, "disasm"},
		{FieldFetch, "fetch"}, {FieldIssue, "issue"},
		{FieldComplete, "complete"}, {FieldGraduate, "graduate"},
		{FieldLevel, "level"}, {FieldAddr, "addr"}, {FieldKind, "kind"},
		{FieldTid, "tid"}, {FieldTrap, "trap"},
	}
	for _, n := range names {
		if mask&n.f != 0 {
			return n.name
		}
	}
	return "?"
}
