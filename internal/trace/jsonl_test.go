package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

const goodV1 = `{"seq":0,"pc":"0x1000","disasm":"ld r1, 0(r2)","fetch":1,"issue":2,"complete":5,"graduate":6,"level":2,"trap":false}`
const goodV2 = `{"seq":1,"pc":"0x1004","disasm":"st r3, 8(r4)","fetch":2,"issue":3,"complete":6,"graduate":7,"level":3,"addr":"0x20c0","kind":"store","tid":2,"trap":true}`

func mustParse(t *testing.T, line string) Event {
	t.Helper()
	var ev Event
	if err := ParseLine([]byte(line), &ev); err != nil {
		t.Fatalf("ParseLine(%s): %v", line, err)
	}
	return ev
}

func TestParseLineV1AndV2(t *testing.T) {
	v1 := mustParse(t, goodV1)
	if v1.Seq != 0 || v1.PC != 0x1000 || v1.Level != 2 || v1.Trap || v1.Has(FieldAddr) {
		t.Errorf("v1 parsed wrong: %+v", v1)
	}
	if err := v1.Validate(); err != nil {
		t.Errorf("v1 Validate: %v", err)
	}
	if v1.Replayable() {
		// A v1 memory event has no addr: validates, but not replayable.
		t.Error("Replayable() true for a memory event without addr")
	}

	v2 := mustParse(t, goodV2)
	if v2.Addr != 0x20c0 || !v2.Store || v2.Tid != 2 || !v2.Trap || !v2.Has(FieldAddr) {
		t.Errorf("v2 parsed wrong: %+v", v2)
	}
	if err := v2.Validate(); err != nil {
		t.Errorf("v2 Validate: %v", err)
	}
	if string(v2.Disasm) != "st r3, 8(r4)" {
		t.Errorf("disasm = %q", v2.Disasm)
	}
}

// fix rewrites one key's raw value in a known-good line, building the
// violation corpus without hand-writing whole lines.
func fix(line, key, rawValue string) string {
	i := strings.Index(line, `"`+key+`":`)
	if i < 0 {
		panic("no key " + key)
	}
	start := i + len(key) + 3
	end := start
	depth := 0
	for ; end < len(line); end++ {
		c := line[end]
		if c == '"' {
			depth ^= 1
		}
		if depth == 0 && (c == ',' || c == '}') {
			break
		}
	}
	return line[:start] + rawValue + line[end:]
}

func TestParseLineRejects(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"not json":         "ld r1, 0(r2)",
		"torn line":        goodV1[:40],
		"trailing garbage": goodV1 + "x",
		"second object":    goodV1 + goodV1,
		"unknown key":      fix(goodV1, "trap", `false,"bogus":1`),
		"duplicate key":    fix(goodV1, "trap", `false,"seq":9`),
		"non-hex pc":       fix(goodV1, "pc", `"4096"`),
		"pc not string":    fix(goodV1, "pc", `4096`),
		"float seq":        fix(goodV1, "seq", `1.5`),
		"exponent fetch":   fix(goodV1, "fetch", `1e3`),
		"leading zero":     fix(goodV1, "seq", `01`),
		"negative seq":     fix(goodV1, "seq", `-1`),
		"bad kind":         fix(goodV2, "kind", `"move"`),
		"addr not hex":     fix(goodV2, "addr", `"8384"`),
		"negative tid":     fix(goodV2, "tid", `-2`),
		"trap not bool":    fix(goodV1, "trap", `"false"`),
		"bad escape":       fix(goodV1, "disasm", `"bad \q esc"`),
		"raw control char": fix(goodV1, "disasm", "\"nl\nin string\""),
		"unterminated":     fix(goodV1, "disasm", `"open`),
		"seq overflow":     fix(goodV1, "seq", `99999999999999999999`),
		"addr overflow":    fix(goodV2, "addr", `"0x10000000000000000"`),
		"missing colon":    strings.Replace(goodV1, `"seq":`, `"seq" `, 1),
		"array value":      fix(goodV1, "level", `[2]`),
		"object value":     fix(goodV1, "level", `{"v":2}`),
		"null disasm":      fix(goodV1, "disasm", `null`),
	}
	var ev Event
	for name, line := range cases {
		if err := ParseLine([]byte(line), &ev); err == nil {
			t.Errorf("%s: ParseLine accepted %s", name, line)
		} else if !errors.Is(err, ErrParse) {
			t.Errorf("%s: error not wrapping ErrParse: %v", name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]string{
		"missing seq":           strings.Replace(goodV1, `"seq":0,`, ``, 1),
		"missing trap":          strings.Replace(goodV1, `,"trap":false`, ``, 1),
		"empty disasm":          fix(goodV1, "disasm", `""`),
		"level out of range":    fix(goodV1, "level", `4`),
		"issue before fetch":    fix(goodV1, "issue", `0`),
		"complete before issue": fix(goodV1, "complete", `1`),
		// The satellite bugfix: the old validator accepted these.
		"graduate before complete": fix(goodV1, "graduate", `4`),
		"graduate zero on late op": fix(goodV1, "graduate", `0`),
		"trap on l1":               fix(goodV2, "level", `1`),
		"addr without kind":        strings.Replace(goodV2, `,"kind":"store"`, ``, 1),
		"kind without addr":        strings.Replace(goodV2, `,"addr":"0x20c0"`, ``, 1),
		"addr on non-memory":       fix(strings.Replace(goodV1, `"level":2`, `"level":0`, 1), "trap", `false,"addr":"0x10","kind":"load"`),
	}
	var ev Event
	for name, line := range cases {
		if err := ParseLine([]byte(line), &ev); err != nil {
			t.Errorf("%s: ParseLine rejected (want Validate to): %v", name, err)
			continue
		}
		if err := ev.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %s", name, line)
		}
	}
}

// jsonMirror is the encoding/json view of a line, pointer-typed so the
// differential can see which keys appeared.
type jsonMirror struct {
	Seq      *uint64 `json:"seq"`
	PC       *string `json:"pc"`
	Disasm   *string `json:"disasm"`
	Fetch    *int64  `json:"fetch"`
	Issue    *int64  `json:"issue"`
	Complete *int64  `json:"complete"`
	Graduate *int64  `json:"graduate"`
	Level    *int    `json:"level"`
	Addr     *string `json:"addr"`
	Kind     *string `json:"kind"`
	Tid      *int    `json:"tid"`
	Trap     *bool   `json:"trap"`
}

// TestParseLineDifferentialJSON pins the hand-rolled parser against
// encoding/json: every line the parser accepts must decode identically
// under a strict json.Decoder, and every line it rejects must either be
// rejected by encoding/json too or fall in the parser's documented
// stricter set (duplicate keys, trailing bytes after the object).
func TestParseLineDifferentialJSON(t *testing.T) {
	lines := []string{
		goodV1, goodV2,
		`{"seq":3,"pc":"0xffffffffffffffff","disasm":"say \"hi\" \\ there A","fetch":-5,"issue":-1,"complete":0,"graduate":0,"level":0,"trap":false}`,
		"  { \"seq\" : 9 , \"pc\" : \"0x0\" , \"disasm\" : \"nop\" , \"fetch\" : 0 , \"issue\" : 0 , \"complete\" : 0 , \"graduate\" : 0 , \"level\" : 0 , \"trap\" : false }  ",
		`{"trap":true,"level":2,"graduate":9,"complete":8,"issue":7,"fetch":6,"disasm":"reordered","pc":"0x10","seq":4}`,
		`{}`,
		`{"seq":1}`,
		fix(goodV1, "seq", `1.5`),
		fix(goodV1, "fetch", `1e3`),
		fix(goodV1, "seq", `01`),
		fix(goodV1, "trap", `"false"`),
		fix(goodV1, "disasm", `null`),
		fix(goodV1, "level", `[2]`),
		goodV1 + "x",
		fix(goodV1, "trap", `false,"seq":9`),
		fix(goodV1, "trap", `false,"bogus":1`),
		"not json at all",
	}
	for _, line := range lines {
		var ev Event
		perr := ParseLine([]byte(line), &ev)

		dec := json.NewDecoder(bytes.NewReader([]byte(line)))
		dec.DisallowUnknownFields()
		var m jsonMirror
		jerr := dec.Decode(&m)
		var trailing bool
		if jerr == nil {
			// encoding/json stops at the end of the first value; anything
			// besides whitespace after it is the parser's stricter case.
			trailing = dec.More()
		}

		if perr == nil {
			if jerr != nil {
				t.Errorf("parser accepted, encoding/json rejected (%v): %s", jerr, line)
				continue
			}
			diff := func(name string, got, want any, present bool) {
				if present && got != want {
					t.Errorf("%s differs: parser %v, json %v: %s", name, got, want, line)
				}
			}
			if m.Seq != nil {
				diff("seq", ev.Seq, *m.Seq, ev.Has(FieldSeq))
			}
			if m.Fetch != nil {
				diff("fetch", ev.Fetch, *m.Fetch, ev.Has(FieldFetch))
			}
			if m.Level != nil {
				diff("level", ev.Level, *m.Level, ev.Has(FieldLevel))
			}
			if m.Trap != nil {
				diff("trap", ev.Trap, *m.Trap, ev.Has(FieldTrap))
			}
			if m.Tid != nil {
				diff("tid", ev.Tid, *m.Tid, ev.Has(FieldTid))
			}
			continue
		}
		// Parser rejected: encoding/json must reject too, unless the line
		// hits the parser's documented stricter rules (duplicate keys, or
		// null where the schema demands a concrete type — encoding/json
		// leaves the pointer nil instead of erroring).
		stricter := strings.Contains(perr.Error(), "duplicate key") ||
			strings.Contains(perr.Error(), "expected string")
		if jerr == nil && !trailing && !stricter {
			t.Errorf("parser rejected (%v), encoding/json accepted: %s", perr, line)
		}
	}
}

// TestParseLineZeroAlloc is the allocation half of the tracecheck
// satellite fix: parsing and validating a line allocates nothing, so
// multi-GB traces validate without per-line garbage.
func TestParseLineZeroAlloc(t *testing.T) {
	line := []byte(goodV2)
	var ev Event
	allocs := testing.AllocsPerRun(1000, func() {
		if err := ParseLine(line, &ev); err != nil {
			t.Fatal(err)
		}
		if err := ev.Validate(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ParseLine+Validate allocates %v per line, want 0", allocs)
	}
}
