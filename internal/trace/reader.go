package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// ErrSampled reports a trace that is missing events: a segment whose
// first event's seq is nonzero, or a seq gap inside a segment. Replaying
// such a trace (typically a -trace-sample 1-in-N recording) would
// silently produce wrong miss rates, so the reader refuses it unless
// ReaderConfig.AllowSampled is set.
var ErrSampled = errors.New("trace: sampled trace (seq gaps); replay needs a full -trace-sample 1 recording, or pass AllowSampled/-allow-sampled for an approximate replay")

// ErrNoAddr reports a memory event without the schema-v2 addr/kind pair:
// the trace predates schema v2 (or was recorded by a v1 writer) and
// cannot drive the memory model.
var ErrNoAddr = errors.New("trace: memory event lacks addr/kind (schema v1 traces validate but cannot be replayed)")

// DefaultMaxLineBytes bounds one trace line. The encoder emits well under
// 1 KiB per event; the bound only guards the reader's memory against
// malformed input.
const DefaultMaxLineBytes = 1 << 20

// ReaderConfig parameterises a Reader. The zero value is the strict
// default: full (unsampled) traces only.
type ReaderConfig struct {
	// AllowSampled accepts traces with seq gaps (see ErrSampled).
	AllowSampled bool

	// MaxLineBytes bounds a single line (0 = DefaultMaxLineBytes).
	MaxLineBytes int
}

// Reader streams trace events from JSONL with bounded memory: one line
// buffer, one Event, no per-line allocation. It validates each line
// (ParseLine + Validate), splits the stream into segments at seq resets
// (concatenated sweep traces restart seq at 0 per cell), and applies the
// sampled-trace policy.
type Reader struct {
	sc  *bufio.Scanner
	cfg ReaderConfig

	line     int
	events   uint64
	traps    uint64
	segments int
	prevSeq  uint64

	// err is sticky: once Next fails, it fails the same way forever.
	err error
}

// NewReader wraps r. The reader takes no ownership of r.
func NewReader(r io.Reader, cfg ReaderConfig) *Reader {
	maxLine := cfg.MaxLineBytes
	if maxLine <= 0 {
		maxLine = DefaultMaxLineBytes
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxLine)
	return &Reader{sc: sc, cfg: cfg}
}

// Next parses the next event into ev, returning io.EOF at a clean end of
// stream. ev.Disasm points into the reader's line buffer and is
// invalidated by the following Next call.
//
// SegmentStart reports whether the returned event began a new segment.
func (r *Reader) Next(ev *Event) (segmentStart bool, err error) {
	if r.err != nil {
		return false, r.err
	}
	fail := func(err error) (bool, error) {
		r.err = err
		return false, err
	}
	if !r.sc.Scan() {
		if err := r.sc.Err(); err != nil {
			return fail(fmt.Errorf("trace: line %d: %w", r.line+1, err))
		}
		return fail(io.EOF)
	}
	r.line++
	b := r.sc.Bytes()
	if len(b) == 0 {
		return fail(fmt.Errorf("trace: line %d: empty line", r.line))
	}
	if err := ParseLine(b, ev); err != nil {
		return fail(fmt.Errorf("trace: line %d: %w", r.line, err))
	}
	if err := ev.Validate(); err != nil {
		return fail(fmt.Errorf("line %d: %w", r.line, err))
	}

	// Segmentation and the sampled-trace policy. A seq at or below its
	// predecessor starts a new segment (concatenated traces restart at 0);
	// within a segment seq must advance by exactly 1, and a segment must
	// start at 0 — anything else means events were dropped (sampling).
	segmentStart = r.events == 0 || ev.Seq <= r.prevSeq
	if segmentStart {
		r.segments++
		if ev.Seq != 0 && !r.cfg.AllowSampled {
			return fail(fmt.Errorf("line %d: segment starts at seq %d, want 0: %w", r.line, ev.Seq, ErrSampled))
		}
	} else if ev.Seq != r.prevSeq+1 && !r.cfg.AllowSampled {
		return fail(fmt.Errorf("line %d: seq gap %d -> %d: %w", r.line, r.prevSeq, ev.Seq, ErrSampled))
	}
	r.prevSeq = ev.Seq
	r.events++
	if ev.Trap {
		r.traps++
	}
	return segmentStart, nil
}

// Line returns the number of lines consumed so far.
func (r *Reader) Line() int { return r.line }

// Events returns the number of valid events consumed so far.
func (r *Reader) Events() uint64 { return r.events }

// Traps returns the number of trap events seen so far.
func (r *Reader) Traps() uint64 { return r.traps }

// Segments returns the number of segments seen so far.
func (r *Reader) Segments() int { return r.segments }

// Ref is one memory reference in a loaded trace, compact enough that
// multi-hundred-thousand-event traces load into a few MB.
type Ref struct {
	Addr  uint64
	Tid   int32
	Level int8 // recorded level (1..3) from the originating run
	Store bool
}

// Data is a fully loaded trace: the memory references (non-memory events
// are counted but not stored) plus segment boundaries, ready for
// repeated replay under different hierarchy configurations (the
// experiments sweep replays one Data across a geometry grid).
type Data struct {
	Refs      []Ref
	SegStart  []int    // Refs index where each segment begins, ascending
	SegEvents []uint64 // events per segment, including non-memory

	Events uint64 // all events, including non-memory
	Traps  uint64
}

// Load reads an entire trace into a Data. Memory is bounded by the
// number of memory references, not the JSONL size.
func Load(r io.Reader, cfg ReaderConfig) (*Data, error) {
	rd := NewReader(r, cfg)
	d := &Data{}
	var ev Event
	for {
		segStart, err := rd.Next(&ev)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if segStart {
			d.SegStart = append(d.SegStart, len(d.Refs))
			d.SegEvents = append(d.SegEvents, 0)
		}
		d.SegEvents[len(d.SegEvents)-1]++
		if ev.Mem() {
			if !ev.Has(FieldAddr) {
				return nil, fmt.Errorf("line %d: %w", rd.Line(), ErrNoAddr)
			}
			d.Refs = append(d.Refs, Ref{Addr: ev.Addr, Tid: int32(ev.Tid), Level: int8(ev.Level), Store: ev.Store})
		}
	}
	d.Events = rd.Events()
	d.Traps = rd.Traps()
	return d, nil
}
