package trace

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// line builds a schema-valid JSONL line for reader tests. level 0 means a
// non-memory event; addr/kind ride along for level > 0 unless v1 is set.
func line(seq uint64, level int, addr uint64, store bool, v1 bool) string {
	base := fmt.Sprintf(`{"seq":%d,"pc":"0x1000","disasm":"x","fetch":1,"issue":2,"complete":3,"graduate":4,"level":%d`, seq, level)
	if level > 0 && !v1 {
		kind := "load"
		if store {
			kind = "store"
		}
		base += fmt.Sprintf(`,"addr":"0x%x","kind":%q`, addr, kind)
	}
	return base + `,"trap":false}`
}

func joinTrace(lines ...string) io.Reader {
	return strings.NewReader(strings.Join(lines, "\n") + "\n")
}

func drain(t *testing.T, r *Reader) error {
	t.Helper()
	var ev Event
	for {
		if _, err := r.Next(&ev); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

func TestReaderSegmentsOnSeqReset(t *testing.T) {
	r := NewReader(joinTrace(
		line(0, 0, 0, false, false),
		line(1, 1, 0x40, false, false),
		line(2, 0, 0, false, false),
		line(0, 0, 0, false, false), // concatenated second trace
		line(1, 2, 0x80, true, false),
	), ReaderConfig{})
	if err := drain(t, r); err != nil {
		t.Fatal(err)
	}
	if r.Segments() != 2 || r.Events() != 5 {
		t.Errorf("segments=%d events=%d, want 2/5", r.Segments(), r.Events())
	}
}

func TestReaderRefusesSampled(t *testing.T) {
	cases := map[string]io.Reader{
		// A -trace-sample 64 recording: first kept event has seq 63.
		"first seq nonzero": joinTrace(line(63, 1, 0x40, false, false)),
		// A gap inside a segment.
		"seq gap": joinTrace(
			line(0, 0, 0, false, false),
			line(1, 1, 0x40, false, false),
			line(3, 1, 0x80, false, false),
		),
		// A reset into a sampled tail.
		"gap in second segment": joinTrace(
			line(0, 0, 0, false, false),
			line(0, 0, 0, false, false),
			line(2, 0, 0, false, false),
		),
	}
	for name, in := range cases {
		r := NewReader(in, ReaderConfig{})
		if err := drain(t, r); !errors.Is(err, ErrSampled) {
			t.Errorf("%s: err = %v, want ErrSampled", name, err)
		}
	}
}

func TestReaderAllowSampled(t *testing.T) {
	r := NewReader(joinTrace(
		line(63, 1, 0x40, false, false),
		line(127, 1, 0x80, false, false),
	), ReaderConfig{AllowSampled: true})
	if err := drain(t, r); err != nil {
		t.Fatal(err)
	}
	if r.Events() != 2 {
		t.Errorf("events = %d, want 2", r.Events())
	}
}

func TestReaderFullTraceAccepted(t *testing.T) {
	var lines []string
	for i := 0; i < 100; i++ {
		lines = append(lines, line(uint64(i), i%4, uint64(0x40*i), i%2 == 0, false))
	}
	r := NewReader(joinTrace(lines...), ReaderConfig{})
	if err := drain(t, r); err != nil {
		t.Fatalf("full trace rejected: %v", err)
	}
	if r.Segments() != 1 || r.Events() != 100 {
		t.Errorf("segments=%d events=%d, want 1/100", r.Segments(), r.Events())
	}
}

func TestReaderRejectsEmptyLineMidTrace(t *testing.T) {
	in := strings.NewReader(line(0, 0, 0, false, false) + "\n\n" + line(1, 0, 0, false, false) + "\n")
	r := NewReader(in, ReaderConfig{})
	err := drain(t, r)
	if err == nil || !strings.Contains(err.Error(), "empty line") {
		t.Errorf("err = %v, want empty-line rejection", err)
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader(strings.NewReader("junk\n"+line(0, 0, 0, false, false)+"\n"), ReaderConfig{})
	var ev Event
	_, err1 := r.Next(&ev)
	_, err2 := r.Next(&ev)
	if err1 == nil || err2 == nil || err1.Error() != err2.Error() {
		t.Errorf("sticky error broken: %v then %v", err1, err2)
	}
}

func TestLoadExtractsRefsAndSegments(t *testing.T) {
	d, err := Load(joinTrace(
		line(0, 0, 0, false, false),
		line(1, 1, 0x40, false, false),
		line(2, 3, 0x80, true, false),
		line(0, 2, 0xc0, false, false), // second segment
	), ReaderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Events != 4 || len(d.Refs) != 3 || len(d.SegStart) != 2 {
		t.Fatalf("events=%d refs=%d segs=%d, want 4/3/2", d.Events, len(d.Refs), len(d.SegStart))
	}
	if d.SegStart[0] != 0 || d.SegStart[1] != 2 {
		t.Errorf("SegStart = %v, want [0 2]", d.SegStart)
	}
	if d.SegEvents[0] != 3 || d.SegEvents[1] != 1 {
		t.Errorf("SegEvents = %v, want [3 1]", d.SegEvents)
	}
	want := []Ref{
		{Addr: 0x40, Level: 1},
		{Addr: 0x80, Level: 3, Store: true},
		{Addr: 0xc0, Level: 2},
	}
	for i, r := range d.Refs {
		if r != want[i] {
			t.Errorf("ref %d = %+v, want %+v", i, r, want[i])
		}
	}
}

func TestLoadRejectsV1MemoryEvents(t *testing.T) {
	_, err := Load(joinTrace(
		line(0, 0, 0, false, true),
		line(1, 2, 0, false, true), // memory event without addr
	), ReaderConfig{})
	if !errors.Is(err, ErrNoAddr) {
		t.Errorf("err = %v, want ErrNoAddr", err)
	}
}

// The reader's memory is bounded by one line buffer: loading a trace
// never retains per-line allocations beyond the compact Refs slice.
func TestReaderBoundedAllocation(t *testing.T) {
	var sb strings.Builder
	const n = 5000
	for i := 0; i < n; i++ {
		sb.WriteString(line(uint64(i), 1, uint64(0x40*(i%8)), false, false))
		sb.WriteByte('\n')
	}
	input := sb.String()
	allocs := testing.AllocsPerRun(5, func() {
		r := NewReader(strings.NewReader(input), ReaderConfig{})
		if err := drain(t, r); err != nil {
			t.Fatal(err)
		}
	})
	// One scanner buffer + reader plumbing; emphatically not O(lines).
	if allocs > 20 {
		t.Errorf("reading %d lines allocated %v times; per-line allocation crept back in", n, allocs)
	}
}
