package trace

import (
	"context"
	"errors"
	"fmt"
	"io"

	"informing/internal/govern"
	"informing/internal/mem"
	"informing/internal/stats"
)

// DefaultMaxTids bounds the number of distinct thread ids a replay will
// build hierarchies for; beyond it the trace is rejected rather than
// letting hostile input allocate unbounded cache state.
const DefaultMaxTids = 64

// ReplayConfig parameterises a trace replay.
type ReplayConfig struct {
	// Hier is the hierarchy geometry to replay through. Reconciling
	// against an originating run requires the same geometry that run used
	// (e.g. ooo.DefaultConfig().Hier).
	Hier mem.HierConfig

	// Reader is the streaming-read policy (sampled refusal, line bound).
	Reader ReaderConfig

	// Ctx cancels a long replay; nil means context.Background(). The
	// returned error wraps govern.ErrCanceled.
	Ctx context.Context

	// MaxRefs bounds the number of memory references replayed (0 =
	// unlimited). Exceeding it aborts with an error wrapping
	// govern.ErrBudget.
	MaxRefs uint64

	// MaxTids bounds distinct thread ids (0 = DefaultMaxTids).
	MaxTids int
}

// SegmentResult is the replay outcome of one trace segment (each segment
// replays through fresh hierarchy state: concatenated sweep traces are
// independent workloads).
type SegmentResult struct {
	Events uint64 // events consumed, including non-memory
	Refs   uint64 // memory references replayed
	Loads  uint64 // loads + prefetches
	Stores uint64

	L1Misses uint64
	L2Misses uint64

	// LevelMismatches counts references whose replayed level differs from
	// the recorded one. Zero for a faithful closed-loop replay (same
	// geometry, full trace, uniprocessor); nonzero is expected when
	// replaying under a different geometry, a sampled trace, or a
	// multiprocessor trace whose recording didn't model coherence.
	LevelMismatches uint64

	// Tids is the number of distinct thread ids, Invalidations the lines
	// removed from other threads' caches by stores (coherence replay).
	Tids          int
	Invalidations uint64

	// L1Tax/L2Tax break the replayed misses down by cause (DESIGN.md
	// §17), summed across the segment's per-tid hierarchies; cross-thread
	// store invalidations attribute to the coherence class. The classes
	// sum to L1Misses/L2Misses.
	L1Tax, L2Tax stats.MissClasses
}

func (s *SegmentResult) add(o SegmentResult) {
	s.Events += o.Events
	s.Refs += o.Refs
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.L1Misses += o.L1Misses
	s.L2Misses += o.L2Misses
	s.LevelMismatches += o.LevelMismatches
	s.Invalidations += o.Invalidations
	s.L1Tax = s.L1Tax.Add(o.L1Tax)
	s.L2Tax = s.L2Tax.Add(o.L2Tax)
	if o.Tids > s.Tids {
		s.Tids = o.Tids
	}
}

// ReplayResult is the aggregate outcome: totals across segments plus the
// per-segment breakdown.
type ReplayResult struct {
	Total    SegmentResult
	Segments []SegmentResult
}

// Reconcile checks the closed-loop contract against the originating
// run's counters: per-level references and misses must match exactly.
// A nil error is the acceptance proof that the trace carries the run's
// complete memory behavior.
func (r *ReplayResult) Reconcile(run stats.Run) error {
	var errs []error
	check := func(name string, got, want uint64) {
		if got != want {
			errs = append(errs, fmt.Errorf("%s: replay %d, run %d (delta %+d)", name, got, want, int64(got)-int64(want)))
		}
	}
	check("mem refs", r.Total.Refs, run.MemRefs)
	check("L1 misses", r.Total.L1Misses, run.L1Misses)
	check("L2 misses", r.Total.L2Misses, run.L2Misses)
	// The miss taxonomy must replay delta-0 too — same stream, same
	// classifier state. Runs recorded before the taxonomy existed carry
	// all-zero classes and are exempt (their trace still reconciles the
	// raw counters above).
	if run.L1Tax.Total() != 0 || run.L2Tax.Total() != 0 {
		check("L1 compulsory", r.Total.L1Tax.Compulsory, run.L1Tax.Compulsory)
		check("L1 capacity", r.Total.L1Tax.Capacity, run.L1Tax.Capacity)
		check("L1 conflict", r.Total.L1Tax.Conflict, run.L1Tax.Conflict)
		check("L1 coherence", r.Total.L1Tax.Coherence, run.L1Tax.Coherence)
		check("L2 compulsory", r.Total.L2Tax.Compulsory, run.L2Tax.Compulsory)
		check("L2 capacity", r.Total.L2Tax.Capacity, run.L2Tax.Capacity)
		check("L2 conflict", r.Total.L2Tax.Conflict, run.L2Tax.Conflict)
		check("L2 coherence", r.Total.L2Tax.Coherence, run.L2Tax.Coherence)
	}
	if r.Total.LevelMismatches != 0 {
		errs = append(errs, fmt.Errorf("per-reference levels: %d mismatches", r.Total.LevelMismatches))
	}
	if len(errs) != 0 {
		return fmt.Errorf("trace: reconcile failed: %w", errors.Join(errs...))
	}
	return nil
}

// replayer drives per-tid hierarchies over one segment at a time.
type replayer struct {
	cfg     ReplayConfig
	gov     *govern.Governor
	maxTids int

	// Per-tid hierarchy state for the current segment. tids preserves
	// first-appearance order; hiers is parallel to it.
	tids  []int32
	hiers []*mem.Hierarchy

	res     ReplayResult
	seg     SegmentResult
	inSeg   bool
	allRefs uint64
}

func newReplayer(cfg ReplayConfig) *replayer {
	maxTids := cfg.MaxTids
	if maxTids <= 0 {
		maxTids = DefaultMaxTids
	}
	return &replayer{
		cfg: cfg,
		gov: govern.New(govern.Config{
			Ctx:            cfg.Ctx,
			MaxInsts:       cfg.MaxRefs,
			WatchdogCycles: -1,
		}),
		maxTids: maxTids,
	}
}

func (rp *replayer) hier(tid int32) (*mem.Hierarchy, error) {
	for i, t := range rp.tids {
		if t == tid {
			return rp.hiers[i], nil
		}
	}
	if len(rp.tids) >= rp.maxTids {
		return nil, fmt.Errorf("trace: more than %d distinct tids", rp.maxTids)
	}
	h, err := mem.NewHierarchy(rp.cfg.Hier)
	if err != nil {
		return nil, fmt.Errorf("trace: replay hierarchy: %w", err)
	}
	rp.tids = append(rp.tids, tid)
	rp.hiers = append(rp.hiers, h)
	return h, nil
}

// beginSegment closes the current segment (if any) and starts the next
// with fresh hierarchy state.
func (rp *replayer) beginSegment() {
	rp.endSegment()
	rp.inSeg = true
}

func (rp *replayer) endSegment() {
	if !rp.inSeg {
		return
	}
	for _, h := range rp.hiers {
		rp.seg.L1Tax = rp.seg.L1Tax.Add(h.L1.Taxonomy())
		rp.seg.L2Tax = rp.seg.L2Tax.Add(h.L2.Taxonomy())
	}
	rp.seg.Tids = len(rp.tids)
	if rp.seg.Tids == 0 {
		// A segment with zero memory references still existed.
		rp.seg.Tids = 1
	}
	rp.res.Segments = append(rp.res.Segments, rp.seg)
	rp.res.Total.add(rp.seg)
	rp.seg = SegmentResult{}
	rp.tids = rp.tids[:0]
	rp.hiers = rp.hiers[:0]
	rp.inSeg = false
}

// ref replays one memory reference. recorded is the trace's level (0 to
// skip the mismatch check — Data always records it).
func (rp *replayer) ref(r Ref) error {
	rp.allRefs++
	if rp.cfg.MaxRefs != 0 && rp.allRefs > rp.cfg.MaxRefs {
		return fmt.Errorf("trace: %w: replay budget %d references", govern.ErrBudget, rp.cfg.MaxRefs)
	}
	if err := rp.gov.Tick(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	h, err := rp.hier(r.Tid)
	if err != nil {
		return err
	}
	level := h.ProbeData(r.Addr, r.Store)
	rp.seg.Refs++
	if r.Store {
		rp.seg.Stores++
		// User-level invalidation coherence (the multiprocessor model's
		// protocol): a store removes the line from every other thread's
		// hierarchy, so their next reference misses — the informing
		// mechanism the paper's §5 protocol observes.
		for i, t := range rp.tids {
			if t == r.Tid {
				continue
			}
			o := rp.hiers[i]
			if o.L1.InvalidateCoherence(r.Addr) {
				rp.seg.Invalidations++
			}
			if o.L2.InvalidateCoherence(r.Addr) {
				rp.seg.Invalidations++
			}
		}
	} else {
		rp.seg.Loads++
	}
	switch level {
	case 2:
		rp.seg.L1Misses++
	case 3:
		rp.seg.L1Misses++
		rp.seg.L2Misses++
	}
	if r.Level != 0 && int(r.Level) != level {
		rp.seg.LevelMismatches++
	}
	return nil
}

func (rp *replayer) finish() *ReplayResult {
	rp.endSegment()
	return &rp.res
}

// Replay streams a JSONL trace from r through the configured hierarchy
// model and returns the per-level outcome. Memory use is bounded: one
// line buffer plus per-tid hierarchy state; the trace itself is never
// held in memory.
func Replay(r io.Reader, cfg ReplayConfig) (*ReplayResult, error) {
	rd := NewReader(r, cfg.Reader)
	rp := newReplayer(cfg)
	var ev Event
	for {
		segStart, err := rd.Next(&ev)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if segStart {
			rp.beginSegment()
		}
		rp.seg.Events++
		if !ev.Mem() {
			continue
		}
		if !ev.Has(FieldAddr) {
			return nil, fmt.Errorf("line %d: %w", rd.Line(), ErrNoAddr)
		}
		if err := rp.ref(Ref{Addr: ev.Addr, Tid: int32(ev.Tid), Level: int8(ev.Level), Store: ev.Store}); err != nil {
			return nil, err
		}
	}
	return rp.finish(), nil
}

// ReplayData replays an already loaded trace. Data can be replayed many
// times under different geometries (the experiments sweep does exactly
// that); each call starts from cold caches.
func ReplayData(d *Data, cfg ReplayConfig) (*ReplayResult, error) {
	rp := newReplayer(cfg)
	for i, start := range d.SegStart {
		end := len(d.Refs)
		if i+1 < len(d.SegStart) {
			end = d.SegStart[i+1]
		}
		rp.beginSegment()
		if i < len(d.SegEvents) {
			rp.seg.Events = d.SegEvents[i]
		}
		for _, r := range d.Refs[start:end] {
			if err := rp.ref(r); err != nil {
				return nil, err
			}
		}
	}
	return rp.finish(), nil
}
