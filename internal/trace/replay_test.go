package trace

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"informing/internal/govern"
	"informing/internal/mem"
	"informing/internal/obs"
	"informing/internal/stats"
)

func tinyHier() mem.HierConfig {
	return mem.HierConfig{
		L1: mem.CacheConfig{SizeBytes: 256, LineBytes: 32, Assoc: 2},
		L2: mem.CacheConfig{SizeBytes: 1024, LineBytes: 32, Assoc: 4},
	}
}

// TestReplayMatchesDirectHierarchy is the core differential: a random
// reference stream recorded through the real obs JSONL encoder and
// replayed from the text must reproduce exactly the counters of driving
// mem.Hierarchy directly with the same (addr, write) sequence.
func TestReplayMatchesDirectHierarchy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref, err := mem.NewHierarchy(tinyHier())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf, 1)
	for i := uint64(0); i < 20000; i++ {
		ev := stats.TraceEvent{
			Seq: i, PC: 0x1000 + 4*i, Disasm: "op",
			Fetch: int64(i), Issue: int64(i) + 1, Complete: int64(i) + 2, Graduate: int64(i) + 3,
		}
		if rng.Intn(3) > 0 { // ~2/3 memory events
			addr := uint64(rng.Intn(64)) * 32 * uint64(1+rng.Intn(4))
			store := rng.Intn(4) == 0
			ev.Addr = addr
			ev.Store = store
			ev.MemLevel = ref.ProbeData(addr, store)
		}
		sink.Emit(ev)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Replay(bytes.NewReader(buf.Bytes()), ReplayConfig{Hier: tinyHier()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Refs != ref.Refs || res.Total.L1Misses != ref.L1Misses || res.Total.L2Misses != ref.L2Misses {
		t.Errorf("replay (refs %d, l1m %d, l2m %d) != direct (refs %d, l1m %d, l2m %d)",
			res.Total.Refs, res.Total.L1Misses, res.Total.L2Misses,
			ref.Refs, ref.L1Misses, ref.L2Misses)
	}
	if res.Total.LevelMismatches != 0 {
		t.Errorf("%d level mismatches on a faithful replay", res.Total.LevelMismatches)
	}
	if err := res.Reconcile(stats.Run{MemRefs: ref.Refs, L1Misses: ref.L1Misses, L2Misses: ref.L2Misses}); err != nil {
		t.Errorf("Reconcile: %v", err)
	}
	if err := res.Reconcile(stats.Run{MemRefs: ref.Refs + 1, L1Misses: ref.L1Misses, L2Misses: ref.L2Misses}); err == nil {
		t.Error("Reconcile accepted a counter delta")
	}
}

// Segments replay from cold caches: the same refs twice as two segments
// double every counter of a single-segment replay.
func TestReplaySegmentsAreIndependent(t *testing.T) {
	var one, two []string
	seg := func(dst *[]string) {
		for i := 0; i < 50; i++ {
			*dst = append(*dst, line(uint64(i), 1+i%3, uint64(0x40*(i%16)), i%5 == 0, false))
		}
	}
	seg(&one)
	seg(&two)
	seg(&two)

	r1, err := Replay(joinTrace(one...), ReplayConfig{Hier: tinyHier()})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Replay(joinTrace(two...), ReplayConfig{Hier: tinyHier()})
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(r2.Segments))
	}
	if r2.Total.Refs != 2*r1.Total.Refs || r2.Total.L1Misses != 2*r1.Total.L1Misses || r2.Total.L2Misses != 2*r1.Total.L2Misses {
		t.Errorf("doubled trace: %+v, single: %+v", r2.Total, r1.Total)
	}
	for _, s := range r2.Segments {
		if s != r1.Segments[0] {
			t.Errorf("segment %+v differs from single-segment reference %+v", s, r1.Segments[0])
		}
	}
}

// Multiprocessor traces replay with per-tid hierarchies and store
// invalidation: a store by one thread knocks the line out of the others.
func TestReplayCoherentMultiTid(t *testing.T) {
	mk := func(seq uint64, level int, addr uint64, kind string, tid int) string {
		return fmt.Sprintf(`{"seq":%d,"pc":"0x1000","disasm":"x","fetch":1,"issue":2,"complete":3,"graduate":4,"level":%d,"addr":"0x%x","kind":%q,"tid":%d,"trap":false}`,
			seq, level, addr, kind, tid)
	}
	res, err := Replay(joinTrace(
		mk(0, 3, 0x100, "load", 0),  // tid 0: cold miss
		mk(1, 1, 0x100, "load", 0),  // tid 0: L1 hit
		mk(2, 3, 0x100, "store", 1), // tid 1: cold miss + invalidates tid 0
		mk(3, 1, 0x100, "load", 0),  // tid 0: would be a hit uniprocessor; now a miss
	), ReplayConfig{Hier: tinyHier()})
	if err != nil {
		t.Fatal(err)
	}
	tot := res.Total
	if tot.Tids != 2 {
		t.Errorf("tids = %d, want 2", tot.Tids)
	}
	if tot.Invalidations != 2 { // L1 + L2 of tid 0
		t.Errorf("invalidations = %d, want 2", tot.Invalidations)
	}
	// Refs: 4. Misses: seq 0 (L1+L2), seq 2 (L1+L2), seq 3 (L1+L2 after
	// invalidation) — seq 1 hits.
	if tot.Refs != 4 || tot.L1Misses != 3 || tot.L2Misses != 3 {
		t.Errorf("refs=%d l1m=%d l2m=%d, want 4/3/3", tot.Refs, tot.L1Misses, tot.L2Misses)
	}
	// The recorded levels came from a run that didn't model the
	// invalidation, so exactly seq 3 mismatches.
	if tot.LevelMismatches != 1 {
		t.Errorf("level mismatches = %d, want 1", tot.LevelMismatches)
	}
}

func TestReplayMaxTids(t *testing.T) {
	var lines []string
	for i := 0; i < 5; i++ {
		lines = append(lines, fmt.Sprintf(`{"seq":%d,"pc":"0x0","disasm":"x","fetch":0,"issue":0,"complete":0,"graduate":0,"level":1,"addr":"0x40","kind":"load","tid":%d,"trap":false}`, i, i))
	}
	if _, err := Replay(joinTrace(lines...), ReplayConfig{Hier: tinyHier(), MaxTids: 3}); err == nil || !strings.Contains(err.Error(), "tids") {
		t.Errorf("err = %v, want tid-bound rejection", err)
	}
}

func TestReplayBudget(t *testing.T) {
	var lines []string
	for i := 0; i < 20; i++ {
		lines = append(lines, line(uint64(i), 1, 0x40, false, false))
	}
	_, err := Replay(joinTrace(lines...), ReplayConfig{Hier: tinyHier(), MaxRefs: 10})
	if !errors.Is(err, govern.ErrBudget) {
		t.Errorf("err = %v, want govern.ErrBudget", err)
	}
}

func TestReplayCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var lines []string
	for i := 0; i < 5000; i++ {
		lines = append(lines, line(uint64(i), 1, 0x40, false, false))
	}
	_, err := Replay(joinTrace(lines...), ReplayConfig{Hier: tinyHier(), Ctx: ctx})
	if !errors.Is(err, govern.ErrCanceled) {
		t.Errorf("err = %v, want govern.ErrCanceled", err)
	}
}

func TestReplayRejectsV1Trace(t *testing.T) {
	_, err := Replay(joinTrace(
		line(0, 0, 0, false, true),
		line(1, 2, 0, false, true),
	), ReplayConfig{Hier: tinyHier()})
	if !errors.Is(err, ErrNoAddr) {
		t.Errorf("err = %v, want ErrNoAddr", err)
	}
}

func TestReplayRejectsSampledByDefault(t *testing.T) {
	_, err := Replay(joinTrace(line(63, 1, 0x40, false, false)), ReplayConfig{Hier: tinyHier()})
	if !errors.Is(err, ErrSampled) {
		t.Errorf("err = %v, want ErrSampled", err)
	}
}

// ReplayData over a loaded trace must agree exactly with the streaming
// replay of the same text.
func TestReplayDataMatchesStreaming(t *testing.T) {
	var lines []string
	rng := rand.New(rand.NewSource(11))
	seq := uint64(0)
	for s := 0; s < 3; s++ {
		seq = 0
		for i := 0; i < 200; i++ {
			lv := rng.Intn(4)
			lines = append(lines, line(seq, lv, uint64(rng.Intn(128))*32, rng.Intn(3) == 0, false))
			seq++
		}
	}
	text := strings.Join(lines, "\n") + "\n"

	streamed, err := Replay(strings.NewReader(text), ReplayConfig{Hier: tinyHier()})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Load(strings.NewReader(text), ReaderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := ReplayData(d, ReplayConfig{Hier: tinyHier()})
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Total != loaded.Total {
		t.Errorf("streamed total %+v != loaded total %+v", streamed.Total, loaded.Total)
	}
	if len(streamed.Segments) != len(loaded.Segments) {
		t.Fatalf("segment counts differ: %d vs %d", len(streamed.Segments), len(loaded.Segments))
	}
	for i := range streamed.Segments {
		if streamed.Segments[i] != loaded.Segments[i] {
			t.Errorf("segment %d: %+v vs %+v", i, streamed.Segments[i], loaded.Segments[i])
		}
	}
}
