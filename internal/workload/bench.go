package workload

import (
	"fmt"

	"informing/internal/asm"
	"informing/internal/isa"
)

// Class partitions the suite like the paper (five integer, nine FP).
type Class uint8

const (
	IntClass Class = iota
	FPClass
)

func (c Class) String() string {
	if c == FPClass {
		return "fp"
	}
	return "int"
}

// Benchmark is one SPEC92 stand-in.
type Benchmark struct {
	Name  string
	Class Class
	// About documents which SPEC92 behaviour the kernel imitates.
	About string
	// Gen emits the kernel (everything between prologue and Halt).
	Gen func(g *Gen)
}

// Gen is the code-generation context handed to benchmark kernels. It
// routes informing-eligible references through the active instrumentation
// plan and provides loop and pseudo-random helpers.
type Gen struct {
	B     *asm.Builder
	Plan  Plan
	Scale int64 // iteration multiplier; 1 = default experiment size

	loopDepth int
	err       error // first structural error; surfaced by Build
}

// fail records the first structural error hit while generating; Build
// returns it instead of panicking (library panic-to-error policy).
func (g *Gen) fail(err error) {
	if g.err == nil {
		g.err = err
	}
}

// Err returns the first structural error recorded while generating.
func (g *Gen) Err() error { return g.err }

// loopRegs are reserved for nested counted loops.
var loopRegs = [...]isa.Reg{isa.R16, isa.R17, isa.R18, isa.R19}

// Iters scales a default iteration count by the configured Scale.
func (g *Gen) Iters(n int64) int64 {
	v := n * g.Scale
	if v < 1 {
		return 1
	}
	return v
}

// Loop emits a counted loop running body n times. Loops nest up to
// len(loopRegs) deep. The counter register counts down to zero; kernels
// that need the iteration index maintain their own induction variables.
func (g *Gen) Loop(n int64, body func()) {
	if g.loopDepth >= len(loopRegs) {
		g.fail(fmt.Errorf("workload: loop nesting exceeds %d", len(loopRegs)))
		return
	}
	r := loopRegs[g.loopDepth]
	g.loopDepth++
	top := g.B.Unique("loop")
	g.B.LoadImm(r, n)
	g.B.Label(top)
	body()
	g.B.Addi(r, r, -1)
	g.B.Bne(r, isa.R0, top)
	g.loopDepth--
}

// LCG advances r through a linear congruential sequence (in-register
// pseudo-randomness for data-dependent branches and indices); tmp is a
// scratch register.
func (g *Gen) LCG(r, tmp isa.Reg) {
	g.B.LoadImm(tmp, 1103515245)
	g.B.Mul(r, r, tmp)
	g.B.Addi(r, r, 12345)
}

// Informing-eligible references (the "potentially interesting" data
// references the paper instruments). Bookkeeping references should use
// g.B directly instead.

// wrapRef routes one reference site through the plan, handing site-aware
// plans (SitePlan) the address expression.
func (g *Gen) wrapRef(ref RefInfo, emit func(informing bool)) {
	if sp, ok := g.Plan.(SitePlan); ok {
		sp.WrapRefSite(g.B, ref, emit)
		return
	}
	g.Plan.WrapRef(g.B, emit)
}

// Ld emits an instrumented integer load.
func (g *Gen) Ld(rd, base isa.Reg, off int64) {
	g.wrapRef(RefInfo{Base: base, Off: off}, func(inf bool) { g.B.Ld(rd, base, off, inf) })
}

// St emits an instrumented integer store.
func (g *Gen) St(val, base isa.Reg, off int64) {
	g.wrapRef(RefInfo{Base: base, Off: off, Store: true}, func(inf bool) { g.B.St(val, base, off, inf) })
}

// Fld emits an instrumented floating-point load.
func (g *Gen) Fld(fd, base isa.Reg, off int64) {
	g.wrapRef(RefInfo{Base: base, Off: off}, func(inf bool) { g.B.Fld(fd, base, off, inf) })
}

// Fst emits an instrumented floating-point store.
func (g *Gen) Fst(fv, base isa.Reg, off int64) {
	g.wrapRef(RefInfo{Base: base, Off: off, Store: true}, func(inf bool) { g.B.Fst(fv, base, off, inf) })
}

// Build assembles benchmark bm under the given instrumentation plan.
func Build(bm Benchmark, plan Plan, scale int64) (*isa.Program, error) {
	if scale < 1 {
		scale = 1
	}
	b := asm.NewBuilder()
	g := &Gen{B: b, Plan: plan, Scale: scale}
	plan.Prologue(b)
	bm.Gen(g)
	if g.err != nil {
		return nil, fmt.Errorf("workload: %s/%s: %w", bm.Name, plan.Name(), g.err)
	}
	b.Halt()
	plan.Epilogue(b)
	return b.Finish()
}

// MustBuild is Build that panics on error (documented Must* helper; the
// benchmark definitions it is used with are static).
func MustBuild(bm Benchmark, plan Plan, scale int64) *isa.Program {
	p, err := Build(bm, plan, scale)
	if err != nil {
		panic(fmt.Sprintf("workload: %s/%s: %v", bm.Name, plan.Name(), err))
	}
	return p
}

// All returns the full fourteen-benchmark suite in the paper's order
// (integer first).
func All() []Benchmark {
	return []Benchmark{
		Compress(), Espresso(), Eqntott(), Sc(), Xlisp(),
		Tomcatv(), Su2cor(), Alvinn(), Mdljsp2(), Ora(),
		Ear(), Hydro2d(), Nasa7(), Swm256(),
	}
}

// Fig2Set returns the thirteen benchmarks plotted in Figure 2 (all but
// su2cor, which gets its own figure).
func Fig2Set() []Benchmark {
	var out []Benchmark
	for _, bm := range All() {
		if bm.Name != "su2cor" {
			out = append(out, bm)
		}
	}
	return out
}

// ByName looks a benchmark up by name.
func ByName(name string) (Benchmark, bool) {
	for _, bm := range All() {
		if bm.Name == name {
			return bm, true
		}
	}
	return Benchmark{}, false
}
