package workload

import "informing/internal/isa"

// initFloats allocates and initialises n float64 words deterministically.
func initFloats(g *Gen, name string, n int, seed uint64) uint64 {
	vals := make([]float64, n)
	x := seed
	for i := range vals {
		x = lcg64(x)
		vals[i] = 1.0 + float64(x>>40)/float64(1<<24)
	}
	return g.B.Floats(name, vals...)
}

// loadFConst materialises a float constant into fd via a one-time data
// word (uninstrumented bookkeeping load).
func loadFConst(g *Gen, fd isa.Reg, v float64) {
	addr := g.B.Floats("", v)
	g.B.LoadImm(isa.R14, int64(addr))
	g.B.Fld(fd, isa.R14, 0, false)
}

// Tomcatv imitates SPEC92 tomcatv: mesh relaxation over two large arrays
// whose bases alias in a small direct-mapped cache. Both arrays are 8
// KB-aligned, so the in-order machine's 8 KB direct-mapped L1 ping-pongs
// on every paired access while the 32 KB 2-way L1 holds both streams.
func Tomcatv() Benchmark {
	return Benchmark{
		Name:  "tomcatv",
		Class: FPClass,
		About: "paired-array mesh relaxation; conflict misses in a DM L1",
		Gen: func(g *Gen) {
			b := g.B
			const words = 8192 // 64 KB per array
			a := b.AllocAligned("meshA", words*8, 8192)
			c := b.AllocAligned("meshB", words*8, 8192)
			loadFConst(g, isa.F(10), 0.5)

			g.Loop(g.Iters(6), func() {
				b.LoadImm(isa.R1, int64(a))
				b.LoadImm(isa.R2, int64(c))
				g.Loop(words, func() {
					g.Fld(isa.F(1), isa.R1, 0)
					g.Fld(isa.F(2), isa.R2, 0)
					b.Fadd(isa.F(3), isa.F(1), isa.F(2))
					b.Fmul(isa.F(3), isa.F(3), isa.F(10))
					g.Fst(isa.F(3), isa.R1, 0)
					b.Addi(isa.R1, isa.R1, 8)
					b.Addi(isa.R2, isa.R2, 8)
				})
			})
		},
	}
}

// Su2cor imitates SPEC92 su2cor: four large lattice arrays whose bases all
// alias in the 8 KB direct-mapped L1 (every reference conflicts) while
// pairing harmlessly into the two ways of the 32 KB L1. This is the
// paper's Figure 3 outlier.
func Su2cor() Benchmark {
	return Benchmark{
		Name:  "su2cor",
		Class: FPClass,
		About: "four aliased lattice streams; catastrophic DM conflicts",
		Gen: func(g *Gen) {
			b := g.B
			const sweep = 8192          // words swept per array (64 KB)
			const arrBytes = 264 * 1024 // pad keeps bases 8K-aligned, 16K-staggered
			bases := make([]uint64, 4)
			for i := range bases {
				bases[i] = b.AllocAligned("", arrBytes, 8192)
			}
			loadFConst(g, isa.F(10), 1.0009765625)

			g.Loop(g.Iters(3), func() {
				b.LoadImm(isa.R1, int64(bases[0]))
				b.LoadImm(isa.R2, int64(bases[1]))
				b.LoadImm(isa.R3, int64(bases[2]))
				b.LoadImm(isa.R4, int64(bases[3]))
				g.Loop(sweep, func() {
					g.Fld(isa.F(1), isa.R1, 0)
					g.Fld(isa.F(2), isa.R2, 0)
					g.Fld(isa.F(3), isa.R3, 0)
					b.Fmul(isa.F(4), isa.F(1), isa.F(2))
					b.Fadd(isa.F(4), isa.F(4), isa.F(3))
					b.Fmul(isa.F(4), isa.F(4), isa.F(10))
					g.Fst(isa.F(4), isa.R4, 0)
					b.Addi(isa.R1, isa.R1, 8)
					b.Addi(isa.R2, isa.R2, 8)
					b.Addi(isa.R3, isa.R3, 8)
					b.Addi(isa.R4, isa.R4, 8)
				})
			})
		},
	}
}

// Alvinn imitates SPEC92 alvinn: neural-network forward passes streaming a
// large weight array against a small resident input vector — perfectly
// predictable branches and fully independent iterations, so the
// out-of-order machine overlaps nearly all handler work.
func Alvinn() Benchmark {
	return Benchmark{
		Name:  "alvinn",
		Class: FPClass,
		About: "dot-product sweeps of a 128 KB weight array",
		Gen: func(g *Gen) {
			b := g.B
			const wWords = 16384 // 128 KB
			const inWords = 256
			w := initFloats(g, "weights", wWords, 11)
			in := initFloats(g, "acts", inWords, 12)

			g.Loop(g.Iters(2), func() {
				b.LoadImm(isa.R1, int64(w))
				b.LoadImm(isa.R2, int64(in))
				b.LoadImm(isa.R3, 0) // input cursor (wraps)
				g.Loop(wWords, func() {
					g.Fld(isa.F(1), isa.R1, 0)
					b.Add(isa.R4, isa.R2, isa.R3)
					g.Fld(isa.F(2), isa.R4, 0)
					b.Fmul(isa.F(3), isa.F(1), isa.F(2))
					b.Fadd(isa.F(4), isa.F(4), isa.F(3))
					b.Addi(isa.R1, isa.R1, 8)
					b.Addi(isa.R3, isa.R3, 8)
					b.Andi(isa.R3, isa.R3, inWords*8-1)
				})
			})
		},
	}
}

// Mdljsp2 imitates SPEC92 mdljsp2: molecular dynamics with an indirection
// array gathering particle coordinates in pseudo-random order — irregular
// but independent misses the out-of-order machine can overlap.
func Mdljsp2() Benchmark {
	return Benchmark{
		Name:  "mdljsp2",
		Class: FPClass,
		About: "indexed gathers over 256 KB of particle coordinates",
		Gen: func(g *Gen) {
			b := g.B
			const nIdx = 4096
			const nCoord = 32768 // 256 KB
			idxVals := make([]uint64, nIdx)
			x := uint64(99)
			for i := range idxVals {
				x = lcg64(x)
				idxVals[i] = (x >> 20) % nCoord
			}
			idx := b.Words("pairs", idxVals...)
			coords := initFloats(g, "coords", nCoord, 13)

			g.Loop(g.Iters(5), func() {
				b.LoadImm(isa.R1, int64(idx))
				g.Loop(nIdx, func() {
					g.Ld(isa.R2, isa.R1, 0)
					b.Slli(isa.R2, isa.R2, 3)
					b.LoadImm(isa.R3, int64(coords))
					b.Add(isa.R3, isa.R3, isa.R2)
					g.Fld(isa.F(1), isa.R3, 0)
					b.Fmul(isa.F(2), isa.F(1), isa.F(1))
					b.Fadd(isa.F(3), isa.F(3), isa.F(2))
					b.Addi(isa.R1, isa.R1, 8)
				})
			})
		},
	}
}

// Ora imitates SPEC92 ora: ray tracing through optical surfaces — long
// serial chains of divides and square roots on register data with almost
// no memory traffic, hence near-zero informing overhead even with large
// handlers.
func Ora() Benchmark {
	return Benchmark{
		Name:  "ora",
		Class: FPClass,
		About: "register-resident divide/sqrt chains, almost no misses",
		Gen: func(g *Gen) {
			b := g.B
			const words = 128 // 1 KB, permanently resident
			tbl := initFloats(g, "surfaces", words, 17)
			loadFConst(g, isa.F(10), 1.25)
			loadFConst(g, isa.F(11), 0.75)
			b.LoadImm(isa.R1, int64(tbl))
			b.LoadImm(isa.R2, 0)

			g.Loop(g.Iters(9000), func() {
				b.Add(isa.R3, isa.R1, isa.R2)
				g.Fld(isa.F(1), isa.R3, 0)
				b.Fadd(isa.F(2), isa.F(1), isa.F(10))
				b.Fdiv(isa.F(3), isa.F(2), isa.F(11))
				b.Fsqrt(isa.F(4), isa.F(3))
				b.Fmul(isa.F(5), isa.F(4), isa.F(10))
				b.Fsub(isa.F(6), isa.F(5), isa.F(1))
				b.Fadd(isa.F(7), isa.F(7), isa.F(6))
				b.Addi(isa.R2, isa.R2, 8)
				b.Andi(isa.R2, isa.R2, words*8-1)
			})
		},
	}
}

// Ear imitates SPEC92 ear: FFT-style butterflies with power-of-two strides
// over a 64 KB signal array.
func Ear() Benchmark {
	return Benchmark{
		Name:  "ear",
		Class: FPClass,
		About: "strided butterfly passes over a 64 KB signal",
		Gen: func(g *Gen) {
			b := g.B
			const words = 8192 // 64 KB
			sig := initFloats(g, "signal", words, 21)

			// The partner offset is staggered by a few lines so the two
			// streams do not systematically alias in a direct-mapped L1
			// (real ear windows are not power-of-two aligned).
			g.Loop(g.Iters(2), func() {
				for _, half := range []int64{words/2 - 32, words/4 - 32, words/8 - 32} {
					b.LoadImm(isa.R1, int64(sig))
					g.Loop(half, func() {
						g.Fld(isa.F(1), isa.R1, 0)
						g.Fld(isa.F(2), isa.R1, half*8)
						b.Fadd(isa.F(3), isa.F(1), isa.F(2))
						b.Fsub(isa.F(4), isa.F(1), isa.F(2))
						g.Fst(isa.F(3), isa.R1, 0)
						g.Fst(isa.F(4), isa.R1, half*8)
						b.Addi(isa.R1, isa.R1, 8)
					})
				}
			})
		},
	}
}

// Hydro2d imitates SPEC92 hydro2d: a three-point stencil streaming two
// half-megabyte arrays whose bases alias in the direct-mapped L1.
func Hydro2d() Benchmark {
	return Benchmark{
		Name:  "hydro2d",
		Class: FPClass,
		About: "stencil over two aliased 512 KB hydrodynamics arrays",
		Gen: func(g *Gen) {
			b := g.B
			const words = 65536 // 512 KB per array
			const sweep = 16384
			src := b.AllocAligned("galaxyA", words*8, 8192)
			dst := b.AllocAligned("galaxyB", words*8, 8192)
			loadFConst(g, isa.F(10), 0.3333333333)

			g.Loop(g.Iters(3), func() {
				b.LoadImm(isa.R1, int64(src)+8)
				b.LoadImm(isa.R2, int64(dst)+8)
				g.Loop(sweep, func() {
					g.Fld(isa.F(1), isa.R1, -8)
					g.Fld(isa.F(2), isa.R1, 0)
					g.Fld(isa.F(3), isa.R1, 8)
					b.Fadd(isa.F(4), isa.F(1), isa.F(2))
					b.Fadd(isa.F(4), isa.F(4), isa.F(3))
					b.Fmul(isa.F(4), isa.F(4), isa.F(10))
					g.Fst(isa.F(4), isa.R2, 0)
					b.Addi(isa.R1, isa.R1, 8)
					b.Addi(isa.R2, isa.R2, 8)
				})
			})
		},
	}
}

// Nasa7 imitates SPEC92 nasa7's matrix-multiply kernel: three 8 KB
// matrices that fit the 32 KB L1 together but conflict pairwise in the
// 8 KB direct-mapped L1, with a strided column walk through B.
func Nasa7() Benchmark {
	return Benchmark{
		Name:  "nasa7",
		Class: FPClass,
		About: "32x32 matrix multiply with a strided column stream",
		Gen: func(g *Gen) {
			b := g.B
			const n = 32 // 8 KB per matrix
			am := initFloats(g, "matA", n*n, 31)
			bm := initFloats(g, "matB", n*n, 32)
			cm := b.Alloc("matC", n*n*8)

			g.Loop(g.Iters(1), func() {
				b.LoadImm(isa.R1, 0) // i*n*8
				g.Loop(n, func() {
					b.LoadImm(isa.R2, 0) // j*8
					g.Loop(n, func() {
						b.LoadImm(isa.R3, int64(am))
						b.Add(isa.R3, isa.R3, isa.R1) // &A[i][0]
						b.LoadImm(isa.R4, int64(bm))
						b.Add(isa.R4, isa.R4, isa.R2)        // &B[0][j]
						b.Fsub(isa.F(3), isa.F(3), isa.F(3)) // acc = 0
						g.Loop(n, func() {
							g.Fld(isa.F(1), isa.R3, 0)
							g.Fld(isa.F(2), isa.R4, 0)
							b.Fmul(isa.F(4), isa.F(1), isa.F(2))
							b.Fadd(isa.F(3), isa.F(3), isa.F(4))
							b.Addi(isa.R3, isa.R3, 8)
							b.Addi(isa.R4, isa.R4, n*8)
						})
						b.LoadImm(isa.R5, int64(cm))
						b.Add(isa.R5, isa.R5, isa.R1)
						b.Add(isa.R5, isa.R5, isa.R2)
						g.Fst(isa.F(3), isa.R5, 0)
						b.Addi(isa.R2, isa.R2, 8)
					})
					b.Addi(isa.R1, isa.R1, n*8)
				})
			})
		},
	}
}

// Swm256 imitates SPEC92 swm256: shallow-water time steps streaming five
// staggered 128 KB field arrays — bandwidth-bound but without systematic
// aliasing (the bases are deliberately offset by odd multiples of 2080
// bytes).
func Swm256() Benchmark {
	return Benchmark{
		Name:  "swm256",
		Class: FPClass,
		About: "five staggered field streams, bandwidth-bound",
		Gen: func(g *Gen) {
			b := g.B
			const words = 16384 // 128 KB per field
			fields := make([]uint64, 5)
			for i := range fields {
				fields[i] = b.Alloc("", words*8+2080)
			}
			loadFConst(g, isa.F(10), 0.125)

			g.Loop(g.Iters(2), func() {
				b.LoadImm(isa.R1, int64(fields[0]))
				b.LoadImm(isa.R2, int64(fields[1]))
				b.LoadImm(isa.R3, int64(fields[2]))
				b.LoadImm(isa.R4, int64(fields[3]))
				b.LoadImm(isa.R5, int64(fields[4]))
				g.Loop(words, func() {
					g.Fld(isa.F(1), isa.R1, 0)
					g.Fld(isa.F(2), isa.R2, 0)
					g.Fld(isa.F(3), isa.R3, 0)
					b.Fadd(isa.F(4), isa.F(1), isa.F(2))
					b.Fmul(isa.F(5), isa.F(3), isa.F(10))
					b.Fadd(isa.F(6), isa.F(4), isa.F(5))
					g.Fst(isa.F(6), isa.R4, 0)
					g.Fst(isa.F(4), isa.R5, 0)
					b.Addi(isa.R1, isa.R1, 8)
					b.Addi(isa.R2, isa.R2, 8)
					b.Addi(isa.R3, isa.R3, 8)
					b.Addi(isa.R4, isa.R4, 8)
					b.Addi(isa.R5, isa.R5, 8)
				})
			})
		},
	}
}
