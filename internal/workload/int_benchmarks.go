package workload

import "informing/internal/isa"

// lcg64 is the build-time pseudo-random generator used to initialise
// benchmark data deterministically.
func lcg64(x uint64) uint64 { return x*6364136223846793005 + 1442695040888963407 }

// initWords allocates and initialises n 64-bit words with a deterministic
// pseudo-random image derived from seed.
func initWords(g *Gen, name string, n int, seed uint64) uint64 {
	vals := make([]uint64, n)
	x := seed
	for i := range vals {
		x = lcg64(x)
		vals[i] = x >> 16
	}
	return g.B.Words(name, vals...)
}

// Compress imitates SPEC92 compress: a byte-stream hasher probing a large
// hash table with data-dependent update branches. The 128 KB table gives
// high miss rates on both machines; the update branch is pseudo-random
// (hard to predict), the stream branch is loop-like (easy).
func Compress() Benchmark {
	return Benchmark{
		Name:  "compress",
		Class: IntClass,
		About: "LZW-style hash-table probing with data-dependent branches",
		Gen: func(g *Gen) {
			b := g.B
			const tblWords = 4096 // 32 KB: thrashes the 8 KB DM L1, partly
			// fits the 32 KB 2-way L1 (the paper's compress is missy but
			// not pathological)
			const inWords = 4096 // 32 KB
			tbl := b.Alloc("table", tblWords*8)
			in := initWords(g, "input", inWords, 0x5eed)

			b.LoadImm(isa.R1, int64(tbl))
			b.LoadImm(isa.R3, 0x2b) // hash state
			g.Loop(g.Iters(3), func() {
				b.LoadImm(isa.R2, int64(in))
				g.Loop(inWords, func() {
					g.Ld(isa.R5, isa.R2, 0) // next input symbol
					b.Addi(isa.R2, isa.R2, 8)
					// h = (h*33 + x) mod tblWords
					b.Slli(isa.R6, isa.R3, 5)
					b.Add(isa.R3, isa.R6, isa.R3)
					b.Add(isa.R3, isa.R3, isa.R5)
					b.Andi(isa.R6, isa.R3, tblWords-1)
					b.Slli(isa.R6, isa.R6, 3)
					b.Add(isa.R6, isa.R6, isa.R1)
					g.Ld(isa.R7, isa.R6, 0) // table probe
					// Data-dependent update branch (~50/50).
					b.Andi(isa.R8, isa.R7, 1)
					skip := b.Unique("cskip")
					b.Bne(isa.R8, isa.R0, skip)
					g.St(isa.R5, isa.R6, 0) // install new code
					b.Label(skip)
					b.Add(isa.R9, isa.R9, isa.R7)
				})
			})
		},
	}
}

// Espresso imitates SPEC92 espresso: dense bit-set logic over small,
// cache-resident cube arrays — very low miss rate, high hit-path IPC.
func Espresso() Benchmark {
	return Benchmark{
		Name:  "espresso",
		Class: IntClass,
		About: "bit-set AND/OR/XOR over small resident arrays",
		Gen: func(g *Gen) {
			b := g.B
			const words = 256 // 2 KB per array: all three stay DM-resident
			a := initWords(g, "cubeA", words, 1)
			c := initWords(g, "cubeB", words, 2)
			d := b.Alloc("cubeC", words*8)

			g.Loop(g.Iters(72), func() {
				b.LoadImm(isa.R1, int64(a))
				b.LoadImm(isa.R2, int64(c))
				b.LoadImm(isa.R3, int64(d))
				g.Loop(words, func() {
					g.Ld(isa.R5, isa.R1, 0)
					g.Ld(isa.R6, isa.R2, 0)
					b.And(isa.R7, isa.R5, isa.R6)
					b.Or(isa.R8, isa.R5, isa.R6)
					b.Xor(isa.R9, isa.R7, isa.R8)
					g.St(isa.R9, isa.R3, 0)
					b.Addi(isa.R1, isa.R1, 8)
					b.Addi(isa.R2, isa.R2, 8)
					b.Addi(isa.R3, isa.R3, 8)
					// Sparse, predictable containment check.
					skip := b.Unique("eskip")
					b.Bne(isa.R7, isa.R5, skip)
					b.Addi(isa.R10, isa.R10, 1)
					b.Label(skip)
				})
			})
		},
	}
}

// Eqntott imitates SPEC92 eqntott: comparison-driven sorting sweeps over
// a mid-sized array. The 24 KB footprint fits the out-of-order 32 KB L1
// but thrashes the in-order 8 KB L1; the swap branch starts unpredictable
// and becomes predictable as the data orders.
func Eqntott() Benchmark {
	return Benchmark{
		Name:  "eqntott",
		Class: IntClass,
		About: "bubble-style comparison sweeps, footprint between the two L1 sizes",
		Gen: func(g *Gen) {
			b := g.B
			const words = 3072 // 24 KB
			arr := initWords(g, "terms", words, 3)

			g.Loop(g.Iters(12), func() {
				b.LoadImm(isa.R1, int64(arr))
				g.Loop(words-1, func() {
					g.Ld(isa.R5, isa.R1, 0)
					g.Ld(isa.R6, isa.R1, 8)
					b.Slt(isa.R7, isa.R6, isa.R5)
					skip := b.Unique("qskip")
					b.Beq(isa.R7, isa.R0, skip)
					g.St(isa.R6, isa.R1, 0)
					g.St(isa.R5, isa.R1, 8)
					b.Label(skip)
					b.Addi(isa.R1, isa.R1, 8)
				})
			})
		},
	}
}

// Sc imitates SPEC92 sc: serial pointer chasing through a 256 KB linked
// structure laid out in pseudo-random order — long dependent chains of
// misses, very low ILP.
func Sc() Benchmark {
	return Benchmark{
		Name:  "sc",
		Class: IntClass,
		About: "pointer-chasing spreadsheet cells in pseudo-random order",
		Gen: func(g *Gen) {
			b := g.B
			const nodes = 16384 // 16 B/node = 256 KB
			base := b.Alloc("cells", nodes*16)
			// Full-period LCG permutation j' = 5j+1 mod nodes chains
			// every node exactly once.
			x := uint64(777)
			for i := 0; i < nodes; i++ {
				next := (5*uint64(i) + 1) % nodes
				b.InitWord(base+uint64(i)*16, base+next*16)
				x = lcg64(x)
				b.InitWord(base+uint64(i)*16+8, x>>40)
			}

			// A spreadsheet interleaves dependency chasing with linear
			// recalculation sweeps over resident cells; the sweep keeps
			// the overall miss rate moderate while the chase contributes
			// long serial miss chains.
			sheet := initWords(g, "sheet", 2048, 778) // 16 KB resident
			g.Loop(g.Iters(6), func() {
				b.LoadImm(isa.R1, int64(base))
				g.Loop(4096, func() {
					g.Ld(isa.R2, isa.R1, 8) // cell value
					b.Add(isa.R3, isa.R3, isa.R2)
					g.Ld(isa.R1, isa.R1, 0) // follow dependency
				})
				b.LoadImm(isa.R4, int64(sheet))
				g.Loop(2048, func() {
					g.Ld(isa.R5, isa.R4, 0)
					b.Slli(isa.R6, isa.R5, 1)
					b.Add(isa.R7, isa.R7, isa.R6)
					g.St(isa.R7, isa.R4, 0)
					b.Addi(isa.R4, isa.R4, 8)
				})
			})
		},
	}
}

// Xlisp imitates SPEC92 xlisp (li): call-heavy traversal of a small heap
// with data-dependent direction branches — mostly cache-resident, branchy,
// dominated by control flow rather than memory stalls.
func Xlisp() Benchmark {
	return Benchmark{
		Name:  "xlisp",
		Class: IntClass,
		About: "interpreter-style tree walking with frequent calls",
		Gen: func(g *Gen) {
			b := g.B
			const nodes = 512 // 3-word nodes: 12 KB heap
			heap := b.Alloc("heap", nodes*24)
			// Perfect binary tree in array order: children of i are
			// 2i+1 and 2i+2 (leaf children wrap to the root).
			for i := 0; i < nodes; i++ {
				l, r := 2*i+1, 2*i+2
				if l >= nodes {
					l = 0
				}
				if r >= nodes {
					r = 0
				}
				b.InitWord(heap+uint64(i)*24, heap+uint64(l)*24)
				b.InitWord(heap+uint64(i)*24+8, heap+uint64(r)*24)
				b.InitWord(heap+uint64(i)*24+16, uint64(i)*3+1)
			}

			b.LoadImm(isa.R3, 0x1357) // direction state
			b.J("xmain")

			// descend: follow left or right child based on R3's low bit.
			b.Label("xdescend")
			b.Andi(isa.R6, isa.R3, 1)
			b.Srli(isa.R3, isa.R3, 1)
			right := b.Unique("xright")
			b.Bne(isa.R6, isa.R0, right)
			g.Ld(isa.R2, isa.R2, 0)
			b.Jr(isa.R15)
			b.Label(right)
			g.Ld(isa.R2, isa.R2, 8)
			b.Jr(isa.R15)

			b.Label("xmain")
			g.Loop(g.Iters(4000), func() {
				b.LoadImm(isa.R2, int64(heap)) // root
				// Refresh direction entropy.
				g.LCG(isa.R3, isa.R6)
				for d := 0; d < 8; d++ {
					b.Jal(isa.R15, "xdescend")
				}
				g.Ld(isa.R7, isa.R2, 16) // node value
				b.Add(isa.R8, isa.R8, isa.R7)
			})
		},
	}
}
