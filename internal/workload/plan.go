// Package workload provides the experiment inputs of the paper's §4.2:
// fourteen synthetic stand-ins for the SPEC92 benchmarks (five integer,
// nine floating-point — see DESIGN.md for the substitution argument),
// generic K-instruction miss handlers, and the instrumentation plans the
// paper compares: no informing (N), a single shared handler (S), a unique
// handler per static reference (U, one MTMHAR per reference), and the
// explicit condition-code check (one BMISS per reference).
package workload

import (
	"fmt"

	"informing/internal/asm"
	"informing/internal/isa"
)

// Register conventions for generated code:
//
//	R1–R15, F0–F15    benchmark kernels
//	R16–R19           loop/bookkeeping helpers inside kernels
//	R21               handler work-chain register
//	R22               BMISS link register (condition-code plan)
//	R23               scratch in handlers
//
// Handlers never touch kernel registers, so instrumentation does not
// perturb benchmark results.
const (
	HandlerChainReg = isa.R21
	BmissLinkReg    = isa.R22
)

// Plan is an instrumentation strategy applied to every informing-eligible
// static reference a benchmark emits.
type Plan interface {
	// Name is the short label used in reports ("N", "S1", "U10", ...).
	Name() string
	// Prologue runs once at program start (before any kernel code).
	Prologue(b *asm.Builder)
	// WrapRef wraps one static reference site. emit must be called
	// exactly once; its argument says whether the memory instruction is
	// marked informing.
	WrapRef(b *asm.Builder, emit func(informing bool))
	// Epilogue emits handler code; called once after the program's Halt.
	Epilogue(b *asm.Builder)
}

// RefInfo describes one static reference site to a site-aware plan: the
// address expression (base register plus immediate offset) and whether
// the reference is a store.
type RefInfo struct {
	Base  isa.Reg
	Off   int64
	Store bool
}

// SitePlan is the optional Plan extension for instrumentation that needs
// the reference's address expression — e.g. a stride-prefetch miss
// handler that fetches ahead of the missing reference. Gen routes
// references through WrapRefSite when the active plan implements it;
// plans that don't care about addresses implement only Plan.
type SitePlan interface {
	Plan
	// WrapRefSite is WrapRef with the site's address expression. emit must
	// be called exactly once.
	WrapRefSite(b *asm.Builder, ref RefInfo, emit func(informing bool))
}

// PlanNone is the baseline: ordinary references, no handlers.
type PlanNone struct{}

// NewPlanNone returns the baseline plan (the paper's "N" bars).
func NewPlanNone() *PlanNone { return &PlanNone{} }

func (*PlanNone) Name() string                            { return "N" }
func (*PlanNone) Prologue(*asm.Builder)                   {}
func (*PlanNone) WrapRef(b *asm.Builder, emit func(bool)) { emit(false) }
func (*PlanNone) Epilogue(*asm.Builder)                   {}

// PlanSingle uses the low-overhead miss trap with one shared K-instruction
// handler: the MHAR is set once, so cache hits carry zero overhead (§2.2).
// The handler's work chain reads and extends HandlerChainReg, making each
// invocation data-dependent on the previous one — exactly the model the
// paper uses to explain the su2cor single-handler anomaly.
type PlanSingle struct {
	K int
}

// NewPlanSingle returns the single-handler trap plan with a K-instruction
// handler body.
func NewPlanSingle(k int) *PlanSingle { return &PlanSingle{K: k} }

func (p *PlanSingle) Name() string { return fmt.Sprintf("S%d", p.K) }

func (p *PlanSingle) Prologue(b *asm.Builder) { b.MtmharLabel("imo$single") }

func (p *PlanSingle) WrapRef(b *asm.Builder, emit func(bool)) { emit(true) }

func (p *PlanSingle) Epilogue(b *asm.Builder) {
	b.Label("imo$single")
	emitChain(b, p.K, true)
	b.Rfmh()
}

// PlanUnique uses the low-overhead miss trap with a distinct handler per
// static reference: one MTMHAR instruction precedes every reference (the
// paper's one-instruction-per-reference overhead case). Each handler's
// chain starts with an independent write, so different handlers are not
// data-dependent on each other.
type PlanUnique struct {
	K     int
	sites []string
}

// NewPlanUnique returns the unique-handler trap plan with K-instruction
// handler bodies.
func NewPlanUnique(k int) *PlanUnique { return &PlanUnique{K: k} }

func (p *PlanUnique) Name() string { return fmt.Sprintf("U%d", p.K) }

// Prologue resets per-build state so a plan value can be reused across
// multiple Build calls.
func (p *PlanUnique) Prologue(*asm.Builder) { p.sites = p.sites[:0] }

func (p *PlanUnique) WrapRef(b *asm.Builder, emit func(bool)) {
	label := b.Unique("imo$u")
	p.sites = append(p.sites, label)
	b.MtmharLabel(label)
	emit(true)
}

func (p *PlanUnique) Epilogue(b *asm.Builder) {
	for _, label := range p.sites {
		b.Label(label)
		emitChain(b, p.K, false)
		b.Rfmh()
	}
}

// PlanCondCode is the §2.1 scheme: an explicit BMISS check follows every
// reference (one instruction of overhead per reference, hit or miss),
// dispatching to a shared K-instruction handler that returns through the
// BMISS link register.
type PlanCondCode struct {
	K int
}

// NewPlanCondCode returns the cache-outcome condition-code plan.
func NewPlanCondCode(k int) *PlanCondCode { return &PlanCondCode{K: k} }

func (p *PlanCondCode) Name() string { return fmt.Sprintf("CC%d", p.K) }

func (p *PlanCondCode) Prologue(*asm.Builder) {}

func (p *PlanCondCode) WrapRef(b *asm.Builder, emit func(bool)) {
	emit(false)
	b.Bmiss(BmissLinkReg, "imo$cc")
}

func (p *PlanCondCode) Epilogue(b *asm.Builder) {
	b.Label("imo$cc")
	emitChain(b, p.K, true)
	b.Jr(BmissLinkReg)
}

// PlanPrefetch is the §6 case study: prefetching written as an informing
// miss handler. Every informing-eligible reference gets its own handler
// (one MTMHAR per site, like PlanUnique); on a miss the handler issues a
// non-binding Prefetch of the address Dist bytes beyond the missing
// reference's own address expression, then returns. Handlers never write
// kernel registers, so the site's base register still holds the value the
// missing reference used — the handler recomputes the address from the
// same operands, displaced by the prefetch distance.
//
// The interesting output is not the handler's overhead but the miss
// taxonomy (DESIGN.md §17): a useful prefetch distance converts demand
// misses the classifier would call capacity/conflict into hits, while a
// useless one adds traffic without moving the classes.
type PlanPrefetch struct {
	// Dist is the prefetch displacement in bytes (32 = next line under the
	// default 32-byte geometry).
	Dist  int64
	sites []pfSite
}

type pfSite struct {
	label string
	ref   RefInfo
}

// NewPlanPrefetch returns the stride-prefetch handler plan with the given
// byte displacement.
func NewPlanPrefetch(dist int64) *PlanPrefetch { return &PlanPrefetch{Dist: dist} }

func (p *PlanPrefetch) Name() string { return fmt.Sprintf("PF%d", p.Dist) }

// Prologue resets per-build state so a plan value can be reused across
// multiple Build calls.
func (p *PlanPrefetch) Prologue(*asm.Builder) { p.sites = p.sites[:0] }

// WrapRef is the site-less fallback: with no address expression there is
// nothing to prefetch, so the reference stays uninstrumented. Gen always
// has the site and calls WrapRefSite instead.
func (p *PlanPrefetch) WrapRef(b *asm.Builder, emit func(bool)) { emit(false) }

func (p *PlanPrefetch) WrapRefSite(b *asm.Builder, ref RefInfo, emit func(bool)) {
	label := b.Unique("imo$pf")
	p.sites = append(p.sites, pfSite{label, ref})
	b.MtmharLabel(label)
	emit(true)
}

func (p *PlanPrefetch) Epilogue(b *asm.Builder) {
	for _, s := range p.sites {
		b.Label(s.label)
		b.Prefetch(s.ref.Base, s.ref.Off+p.Dist)
		b.Rfmh()
	}
}

// emitChain emits the paper's generic K-instruction handler body: K
// mutually data-dependent instructions (a serial add chain, so a
// K-instruction handler has a K-cycle dependence height). When linked is
// true the chain also depends on its previous invocation.
func emitChain(b *asm.Builder, k int, linked bool) {
	if k <= 0 {
		return
	}
	if linked {
		b.Addi(HandlerChainReg, HandlerChainReg, 1)
	} else {
		b.Addi(HandlerChainReg, isa.R0, 1)
	}
	for i := 1; i < k; i++ {
		b.Addi(HandlerChainReg, HandlerChainReg, 1)
	}
}
