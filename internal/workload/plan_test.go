package workload

import (
	"testing"

	"informing/internal/core"
	"informing/internal/isa"
)

// countStatic returns static counts over a program's text.
func countStatic(p *isa.Program) (memRefs, informing, mtmhar, bmiss, rfmh int) {
	for _, in := range p.Text {
		if in.IsMem() && in.Op != isa.Prefetch {
			memRefs++
			if in.Informing {
				informing++
			}
		}
		switch in.Op {
		case isa.Mtmhar:
			mtmhar++
		case isa.Bmiss:
			bmiss++
		case isa.Rfmh:
			rfmh++
		}
	}
	return
}

func TestPlanNoneEmitsNothingExtra(t *testing.T) {
	bm, _ := ByName("espresso")
	p := MustBuild(bm, NewPlanNone(), 1)
	_, informing, mtmhar, bmiss, rfmh := countStatic(p)
	if informing+mtmhar+bmiss+rfmh != 0 {
		t.Errorf("baseline plan added instrumentation: inf=%d mtmhar=%d bmiss=%d rfmh=%d",
			informing, mtmhar, bmiss, rfmh)
	}
}

func TestPlanSingleStructure(t *testing.T) {
	bm, _ := ByName("espresso")
	base := MustBuild(bm, NewPlanNone(), 1)
	p := MustBuild(bm, NewPlanSingle(10), 1)
	memRefs, informing, mtmhar, _, rfmh := countStatic(p)
	if informing != memRefs {
		t.Errorf("single plan: %d of %d refs informing", informing, memRefs)
	}
	if mtmhar != 1 {
		t.Errorf("single plan: %d MTMHARs, want 1", mtmhar)
	}
	if rfmh != 1 {
		t.Errorf("single plan: %d handlers, want 1", rfmh)
	}
	// Static growth: one MTMHAR + K-instruction handler + RFMH.
	if got, want := len(p.Text)-len(base.Text), 1+10+1; got != want {
		t.Errorf("static growth %d, want %d", got, want)
	}
}

func TestPlanUniqueStructure(t *testing.T) {
	bm, _ := ByName("espresso")
	base := MustBuild(bm, NewPlanNone(), 1)
	p := MustBuild(bm, NewPlanUnique(5), 1)
	memRefs, informing, mtmhar, _, rfmh := countStatic(p)
	if informing != memRefs {
		t.Errorf("unique plan: %d of %d refs informing", informing, memRefs)
	}
	if mtmhar != memRefs {
		t.Errorf("unique plan: %d MTMHARs for %d refs", mtmhar, memRefs)
	}
	if rfmh != memRefs {
		t.Errorf("unique plan: %d handlers for %d refs", rfmh, memRefs)
	}
	// One MTMHAR per site plus a (K+1)-instruction handler per site.
	if got, want := len(p.Text)-len(base.Text), memRefs*(1+5+1); got != want {
		t.Errorf("static growth %d, want %d", got, want)
	}
}

func TestPlanCondCodeStructure(t *testing.T) {
	bm, _ := ByName("espresso")
	p := MustBuild(bm, NewPlanCondCode(3), 1)
	memRefs, informing, _, bmiss, _ := countStatic(p)
	if informing != 0 {
		t.Error("condition-code plan marked refs informing (traps unused)")
	}
	if bmiss != memRefs {
		t.Errorf("%d BMISS checks for %d refs", bmiss, memRefs)
	}
}

func TestPlanNames(t *testing.T) {
	cases := map[string]Plan{
		"N": NewPlanNone(), "S1": NewPlanSingle(1), "S100": NewPlanSingle(100),
		"U10": NewPlanUnique(10), "CC1": NewPlanCondCode(1),
	}
	for want, plan := range cases {
		if plan.Name() != want {
			t.Errorf("plan name %q, want %q", plan.Name(), want)
		}
	}
}

func TestHandlerChainLinkage(t *testing.T) {
	// The single handler's chain must read its previous value (linked);
	// unique handlers must start with an independent write.
	bm, _ := ByName("espresso")
	ps := MustBuild(bm, NewPlanSingle(3), 1)
	pu := MustBuild(bm, NewPlanUnique(3), 1)

	firstHandlerInst := func(p *isa.Program, after isa.Op) *isa.Inst {
		for k, in := range p.Text {
			if in.Op == isa.Halt && k+1 < len(p.Text) {
				return &p.Text[k+1]
			}
		}
		_ = after
		return nil
	}
	s := firstHandlerInst(ps, isa.Halt)
	if s == nil || s.Rs1 != HandlerChainReg {
		t.Errorf("single handler first instruction %v: not linked to previous invocation", s)
	}
	u := firstHandlerInst(pu, isa.Halt)
	if u == nil || u.Rs1 != isa.R0 {
		t.Errorf("unique handler first instruction %v: not independent", u)
	}
}

func TestAllBenchmarksBuildUnderAllPlans(t *testing.T) {
	plans := []func() Plan{
		func() Plan { return NewPlanNone() },
		func() Plan { return NewPlanSingle(1) },
		func() Plan { return NewPlanSingle(10) },
		func() Plan { return NewPlanUnique(1) },
		func() Plan { return NewPlanUnique(10) },
		func() Plan { return NewPlanCondCode(10) },
	}
	for _, bm := range All() {
		for _, mk := range plans {
			plan := mk()
			p, err := Build(bm, plan, 1)
			if err != nil {
				t.Fatalf("%s/%s: %v", bm.Name, plan.Name(), err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", bm.Name, plan.Name(), err)
			}
			if _, err := p.EncodeText(); err != nil {
				t.Fatalf("%s/%s: %v", bm.Name, plan.Name(), err)
			}
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	bm, _ := ByName("compress")
	a := MustBuild(bm, NewPlanUnique(10), 1)
	b := MustBuild(bm, NewPlanUnique(10), 1)
	if len(a.Text) != len(b.Text) {
		t.Fatal("nondeterministic text length")
	}
	for k := range a.Text {
		if a.Text[k] != b.Text[k] {
			t.Fatalf("instruction %d differs", k)
		}
	}
}

func TestSuiteComposition(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("%d benchmarks, want 14", len(all))
	}
	ints, fps := 0, 0
	for _, bm := range all {
		if bm.Class == IntClass {
			ints++
		} else {
			fps++
		}
		if bm.About == "" {
			t.Errorf("%s has no description", bm.Name)
		}
	}
	if ints != 5 || fps != 9 {
		t.Errorf("%d integer + %d fp, want 5 + 9 (the paper's split)", ints, fps)
	}
	if len(Fig2Set()) != 13 {
		t.Errorf("Figure 2 set has %d benchmarks, want 13", len(Fig2Set()))
	}
	for _, bm := range Fig2Set() {
		if bm.Name == "su2cor" {
			t.Error("su2cor must be excluded from Figure 2")
		}
	}
	if _, ok := ByName("su2cor"); !ok {
		t.Error("su2cor missing")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("unknown benchmark found")
	}
}

func TestScaleGrowsWork(t *testing.T) {
	bm, _ := ByName("ora")
	p1 := MustBuild(bm, NewPlanNone(), 1)
	p3 := MustBuild(bm, NewPlanNone(), 3)
	r1, err := core.R10000(core.Off).WithMaxInsts(50_000_000).Run(p1)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := core.R10000(core.Off).WithMaxInsts(50_000_000).Run(p3)
	if err != nil {
		t.Fatal(err)
	}
	if r3.DynInsts < 2*r1.DynInsts {
		t.Errorf("scale 3 ran %d instrs vs %d at scale 1", r3.DynInsts, r1.DynInsts)
	}
}

// TestMissRegimes pins the cache-behaviour design of key benchmarks: the
// contrasts that drive the paper's figures.
func TestMissRegimes(t *testing.T) {
	if testing.Short() {
		t.Skip("regime check is slow")
	}
	missRate := func(name string, machine core.Machine) float64 {
		bm, ok := ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %s", name)
		}
		cfg := core.R10000(core.Off)
		if machine == core.InOrder {
			cfg = core.Alpha21164(core.Off)
		}
		r, err := cfg.WithMaxInsts(50_000_000).Run(MustBuild(bm, NewPlanNone(), 1))
		if err != nil {
			t.Fatal(err)
		}
		return r.L1MissRate()
	}
	// ora and espresso: near-zero misses everywhere.
	for _, name := range []string{"ora", "espresso"} {
		if mr := missRate(name, core.OutOfOrder); mr > 0.02 {
			t.Errorf("%s ooo miss rate %.3f, want ~0", name, mr)
		}
	}
	// su2cor: catastrophic on the 8 KB DM cache, moderate on 32 KB 2-way.
	if mr := missRate("su2cor", core.InOrder); mr < 0.9 {
		t.Errorf("su2cor in-order miss rate %.2f, want ~1.0", mr)
	}
	if mr := missRate("su2cor", core.OutOfOrder); mr > 0.5 {
		t.Errorf("su2cor ooo miss rate %.2f, want moderate", mr)
	}
	// tomcatv: large in-order/out-of-order contrast.
	ioMr := missRate("tomcatv", core.InOrder)
	oooMr := missRate("tomcatv", core.OutOfOrder)
	if ioMr < 2*oooMr {
		t.Errorf("tomcatv contrast too weak: in-order %.2f vs ooo %.2f", ioMr, oooMr)
	}
}
