package workload

import (
	"testing"

	"informing/internal/core"
)

// TestProfileSuite characterises every benchmark on both machines with no
// instrumentation: each must terminate, execute a non-trivial instruction
// count, and exhibit the miss-rate regime its design claims (logged for
// calibration; hard assertions are deliberately loose).
func TestProfileSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite profile is slow")
	}
	for _, bm := range All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			prog := MustBuild(bm, NewPlanNone(), 1)
			oooRun, err := core.R10000(core.Off).WithMaxInsts(20_000_000).Run(prog)
			if err != nil {
				t.Fatalf("ooo: %v", err)
			}
			ioRun, err := core.Alpha21164(core.Off).WithMaxInsts(20_000_000).Run(prog)
			if err != nil {
				t.Fatalf("inorder: %v", err)
			}
			if oooRun.DynInsts < 50_000 {
				t.Errorf("dynamic size too small: %d", oooRun.DynInsts)
			}
			if oooRun.DynInsts != ioRun.DynInsts {
				t.Errorf("machines disagree on dynamic count: %d vs %d",
					oooRun.DynInsts, ioRun.DynInsts)
			}
			t.Logf("ooo: %v", oooRun)
			t.Logf("io : %v", ioRun)
		})
	}
}
