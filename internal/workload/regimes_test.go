package workload

import (
	"testing"

	"informing/internal/core"
)

// regimeBand pins each benchmark's L1 miss-rate regime on both machines —
// the calibrated behaviour that makes the figures come out paper-shaped.
// Bands are deliberately loose; they exist to catch accidental
// de-calibration, not to freeze exact values.
type regimeBand struct {
	oooLo, oooHi float64 // out-of-order (32 KB 2-way) miss rate
	ioLo, ioHi   float64 // in-order (8 KB DM) miss rate
}

var regimes = map[string]regimeBand{
	"compress": {0.10, 0.40, 0.25, 0.60},
	"espresso": {0.00, 0.02, 0.00, 0.02},
	"eqntott":  {0.00, 0.05, 0.02, 0.15},
	"sc":       {0.10, 0.40, 0.15, 0.45},
	"xlisp":    {0.00, 0.05, 0.05, 0.25},
	"tomcatv":  {0.10, 0.25, 0.50, 1.00},
	"su2cor":   {0.15, 0.35, 0.90, 1.00},
	"alvinn":   {0.05, 0.25, 0.20, 0.50},
	"mdljsp2":  {0.30, 0.75, 0.35, 0.80},
	"ora":      {0.00, 0.02, 0.00, 0.02},
	"ear":      {0.05, 0.20, 0.10, 0.60},
	"hydro2d":  {0.05, 0.25, 0.35, 0.80},
	"nasa7":    {0.00, 0.05, 0.02, 0.15},
	"swm256":   {0.15, 0.35, 0.15, 0.45},
}

func TestMissRateRegimesAll(t *testing.T) {
	if testing.Short() {
		t.Skip("regime sweep is slow")
	}
	for _, bm := range All() {
		band, ok := regimes[bm.Name]
		if !ok {
			t.Errorf("no regime band for %s", bm.Name)
			continue
		}
		prog := MustBuild(bm, NewPlanNone(), 1)
		ooo, err := core.R10000(core.Off).WithMaxInsts(50_000_000).Run(prog)
		if err != nil {
			t.Fatalf("%s ooo: %v", bm.Name, err)
		}
		io, err := core.Alpha21164(core.Off).WithMaxInsts(50_000_000).Run(prog)
		if err != nil {
			t.Fatalf("%s inorder: %v", bm.Name, err)
		}
		if mr := ooo.L1MissRate(); mr < band.oooLo || mr > band.oooHi {
			t.Errorf("%s ooo miss rate %.3f outside band [%.2f, %.2f]",
				bm.Name, mr, band.oooLo, band.oooHi)
		}
		if mr := io.L1MissRate(); mr < band.ioLo || mr > band.ioHi {
			t.Errorf("%s in-order miss rate %.3f outside band [%.2f, %.2f]",
				bm.Name, mr, band.ioLo, band.ioHi)
		}
		// The in-order 8 KB cache must never do better than the 32 KB
		// 2-way (LRU inclusion does not strictly guarantee this across
		// different set counts, but all our kernels respect it and it is
		// a useful sanity net).
		if io.L1MissRate()+1e-9 < ooo.L1MissRate() {
			t.Errorf("%s: in-order miss rate %.3f below out-of-order %.3f",
				bm.Name, io.L1MissRate(), ooo.L1MissRate())
		}
	}
}
