package workload

import (
	"testing"

	"informing/internal/asm"
	"informing/internal/core"
)

// TestWorkloadsSurviveDisassemblyRoundTrip is the heavyweight cross-check
// of the assembler and disassembler: every benchmark under a
// representative plan is disassembled to text, reassembled, and the
// result must be instruction-for-instruction and word-for-word identical.
func TestWorkloadsSurviveDisassemblyRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("round-trip of all workloads is slow")
	}
	plans := []Plan{NewPlanNone(), NewPlanSingle(10), NewPlanUnique(1), NewPlanCondCode(1)}
	for _, bm := range All() {
		for _, plan := range plans {
			p := MustBuild(bm, plan, 1)
			src := asm.Disassemble(p)
			q, err := asm.Assemble(src)
			if err != nil {
				t.Fatalf("%s/%s: reassemble: %v", bm.Name, plan.Name(), err)
			}
			if len(q.Text) != len(p.Text) {
				t.Fatalf("%s/%s: text %d -> %d", bm.Name, plan.Name(), len(p.Text), len(q.Text))
			}
			for k := range p.Text {
				if p.Text[k] != q.Text[k] {
					t.Fatalf("%s/%s: inst %d: %v -> %v",
						bm.Name, plan.Name(), k, p.Text[k], q.Text[k])
				}
			}
			if len(p.Init) != len(q.Init) {
				t.Fatalf("%s/%s: init %d -> %d words", bm.Name, plan.Name(), len(p.Init), len(q.Init))
			}
			for addr, v := range p.Init {
				if q.Init[addr] != v {
					t.Fatalf("%s/%s: init[%#x] differs", bm.Name, plan.Name(), addr)
				}
			}
		}
	}
}

// TestRoundTripPreservesBehaviour: beyond structural identity, a
// round-tripped program must simulate identically.
func TestRoundTripPreservesBehaviour(t *testing.T) {
	bm, _ := ByName("compress")
	p := MustBuild(bm, NewPlanSingle(1), 1)
	q, err := asm.Assemble(asm.Disassemble(p))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.R10000(core.TrapBranch).WithMaxInsts(50_000_000)
	a, err := cfg.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("round-tripped program simulates differently:\n%v\n%v", a, b)
	}
}

// TestSampledPlanReducesOverhead: the §4.2.2 sampling mitigation — a
// 100-instruction handler sampled 1-in-16 costs far less than the full
// handler while still observing every miss (the fast path runs on each).
func TestSampledPlanReducesOverhead(t *testing.T) {
	bm, _ := ByName("compress")
	cfg := core.R10000(core.TrapBranch).WithMaxInsts(50_000_000)
	base, err := core.R10000(core.Off).WithMaxInsts(50_000_000).Run(MustBuild(bm, NewPlanNone(), 1))
	if err != nil {
		t.Fatal(err)
	}
	full, err := cfg.Run(MustBuild(bm, NewPlanSingle(100), 1))
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := cfg.Run(MustBuild(bm, MustPlanSampled(100, 16), 1))
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Traps != full.Traps {
		t.Errorf("sampling changed trap count: %d vs %d", sampled.Traps, full.Traps)
	}
	if sampled.HandlerInsts >= full.HandlerInsts {
		t.Errorf("sampling did not reduce handler work: %d vs %d",
			sampled.HandlerInsts, full.HandlerInsts)
	}
	fullOv := float64(full.Cycles) / float64(base.Cycles)
	smpOv := float64(sampled.Cycles) / float64(base.Cycles)
	if smpOv >= fullOv {
		t.Errorf("sampling did not reduce overhead: %.2f vs %.2f", smpOv, fullOv)
	}
	// The fast path costs ~4 instructions per miss, so sampled overhead
	// should be a small fraction of the full handler's.
	if (smpOv - 1) > 0.5*(fullOv-1) {
		t.Errorf("sampling saved too little: %.2f vs %.2f", smpOv, fullOv)
	}
	t.Logf("overhead: none=1.00 sampled=%.2f full=%.2f", smpOv, fullOv)
}

func TestSampledPlanValidation(t *testing.T) {
	if p, err := NewPlanSampled(10, 12); err == nil || p != nil {
		t.Error("non-power-of-two period accepted")
	}
	if _, err := NewPlanSampled(10, 0); err == nil {
		t.Error("zero period accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustPlanSampled accepted a bad period")
		}
	}()
	MustPlanSampled(10, 12)
}
