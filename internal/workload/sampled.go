package workload

import (
	"fmt"

	"informing/internal/asm"
	"informing/internal/isa"
)

// PlanSampled implements the mitigation §4.2.2 suggests for expensive
// handlers ("optimizations such as sampling could be used to reduce the
// overhead"): a single shared handler that performs its K-instruction work
// only on every Period-th miss and returns immediately otherwise. Period
// must be a power of two (the sample test is a mask).
type PlanSampled struct {
	K      int
	Period int
}

// NewPlanSampled returns the sampling plan, rejecting a period that is
// not a positive power of two.
func NewPlanSampled(k, period int) (*PlanSampled, error) {
	if period <= 0 || period&(period-1) != 0 {
		return nil, fmt.Errorf("workload: sampling period %d not a power of two", period)
	}
	return &PlanSampled{K: k, Period: period}, nil
}

// MustPlanSampled is NewPlanSampled that panics on error; for static
// experiment definitions only (documented Must* helper).
func MustPlanSampled(k, period int) *PlanSampled {
	p, err := NewPlanSampled(k, period)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements Plan.
func (p *PlanSampled) Name() string { return fmt.Sprintf("SMP%d/%d", p.K, p.Period) }

// Prologue implements Plan.
func (p *PlanSampled) Prologue(b *asm.Builder) { b.MtmharLabel("imo$sampled") }

// WrapRef implements Plan.
func (p *PlanSampled) WrapRef(b *asm.Builder, emit func(bool)) { emit(true) }

// Epilogue implements Plan. The fast path is three instructions (count,
// mask, branch) plus the return.
func (p *PlanSampled) Epilogue(b *asm.Builder) {
	b.Label("imo$sampled")
	b.Addi(isa.R23, isa.R23, 1)
	b.Andi(isa.R24, isa.R23, int64(p.Period-1))
	skip := b.Unique("imo$smpskip")
	b.Bne(isa.R24, isa.R0, skip)
	emitChain(b, p.K, true)
	b.Label(skip)
	b.Rfmh()
}

// PlanCounter is the paper's §1 strawman: per-reference miss detection
// with a hardware miss counter, "read just before and after each time that
// reference is executed ... extremely slow". Each instrumented reference
// gains two serializing MFCNT reads, a subtract, a compare-branch and a
// one-instruction recording action on the miss path.
type PlanCounter struct{}

// NewPlanCounter returns the counter-based strawman plan.
func NewPlanCounter() *PlanCounter { return &PlanCounter{} }

// Name implements Plan.
func (p *PlanCounter) Name() string { return "CNT" }

// Prologue implements Plan.
func (p *PlanCounter) Prologue(*asm.Builder) {}

// WrapRef implements Plan.
func (p *PlanCounter) WrapRef(b *asm.Builder, emit func(bool)) {
	b.Mfcnt(isa.R24)
	emit(false)
	b.Mfcnt(isa.R25)
	b.Sub(isa.R26, isa.R25, isa.R24)
	skip := b.Unique("imo$cntskip")
	b.Beq(isa.R26, isa.R0, skip)
	b.Addi(HandlerChainReg, HandlerChainReg, 1)
	b.Label(skip)
}

// Epilogue implements Plan.
func (p *PlanCounter) Epilogue(*asm.Builder) {}
